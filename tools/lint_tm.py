#!/usr/bin/env python3
"""TM-protocol lint: static checks of this repository's concurrency discipline.

The PART-HTM protocol keeps its correctness argument in a small number of
mechanical rules (DESIGN.md, "Memory model & analysis tooling").  This
checker enforces them over the source tree so a refactor cannot silently
drop one.  It runs as the `lint_tm` CTest target in every CI lane.

DEPRECATION NOTE — rule migration to tools/tmcheck/
---------------------------------------------------
The deep rules R1, R1b, R3, R4 and R7 have MOVED to the structural
analyzer `tools/tmcheck/` (ctest target `tmcheck`, label `lint`), which
resolves typedef aliases, default arguments and named memory-order
constants, and walks the cross-TU call graph — all things a line-based
regex provably cannot do (e.g. a trace emission two calls below an
rt.attempt() lambda, or `using W = std::atomic<uint64_t>;`).  Each rule
is enforced in exactly ONE tool; do not re-add the migrated checks here.
This file remains the single source of truth for the shared vocabulary
(RULE_WINDOW, the protocol directory lists, the R6c happens-before edge
inventory, the forbidden-tail list, `has_marker`) — tmcheck imports them
from here so the two tools can never disagree on a constant.

Rules enforced HERE (cheap, line-local, text-level)
---------------------------------------------------
R2  cache-line alignment (src/core, src/stm, src/sim, src/sig, src/util):
    Every struct/class that declares a std::atomic member is shared
    mutable state and must be alignas(kCacheLineBytes), or pad the member
    itself (alignas on the member / Padded<...>), so unrelated shared words
    never share a conflict-granularity line.

R5  suppression hygiene (tsan.supp): no `race:phtm` entries.  Races in our
    own code are fixed or annotated at the site (util/annotations.hpp),
    never suppressed wholesale — a symbol-level suppression would hide
    every future bug on the same code path.

R6  annotation/instrumentation discipline (all of src/, excluding the
    macro definition headers and the model checker itself):
    a) Every PHTM_ANNOTATE_HAPPENS_BEFORE must have a matching
       PHTM_ANNOTATE_HAPPENS_AFTER somewhere in the tree, and vice versa.
       Pairing is by the trailing member/identifier of the address
       expression (`&s.doom` pairs with `&slots_[victim].doom`): an
       unpaired annotation either tells TSan about an edge nobody observes
       (silencing real races) or trusts an edge nobody publishes.
    b) Every PHTM_MC_YIELD / PHTM_MC_SPIN marker needs an `mc-yield:`
       justification comment (same line or <= RULE_WINDOW lines above)
       saying why that point is a scheduling decision.  The model checker
       only switches threads at these markers, so an unjustified marker is
       an unreviewed hole (or an unreviewed blind spot) in the explored
       interleaving space.
    c) Happens-before annotations must name an edge from the reviewed
       inventory (KNOWN_HB_EDGE_TAILS).  The annotations tell TSan (and the
       reader) about synchronization the memory model cannot see; each such
       edge is an argued exception documented in DESIGN.md, so a new tail
       is a new correctness argument — add it to the inventory alongside
       that write-up, don't just annotate.
    d) Some fields must never carry HB annotations or MC markers
       (ANNOTATION_FORBIDDEN_TAILS): the monitor table's seqlock-guarded
       entry fields (tag/readers/writer) are natively std::atomic with
       load-bearing orderings — an annotation there would paper over a
       missing ordering instead of surfacing it — and the ring-validation
       watermark (validated_ts) is owner-private, so an annotation would
       invent a cross-thread edge where none exists.

R8  spin discipline (all of src/, except the cpu_relax definition header):
    Every `cpu_relax()` poll site is a wait loop until proven otherwise,
    and an unbounded wait loop is a starvation bug waiting for the right
    convoy.  Each site must carry, within RULE_WINDOW lines, either a
    `spin-escalates:` marker (the loop polls a bounded-wait detector —
    core::BoundedSpin — and escalates to the ticketed slow path when the
    bound is spent) or a `spin-waiver:` comment arguing why the wait is
    finite without one (bounded pause, monotone drain, FIFO hand-off).

R10 clang-tidy suppression hygiene (src/, tests/):
    Every NOLINT / NOLINTNEXTLINE / NOLINTBEGIN must (a) name the
    suppressed check(s) in parentheses — a bare NOLINT silences every
    check on the line, including future ones — and (b) carry a
    justification: explanatory text after the check list on the same
    comment line (`// NOLINTNEXTLINE(bugprone-x): why`).  Wholesale
    unexplained suppressions are how tidy findings rot.

Rules migrated to tools/tmcheck/ (do NOT re-add here): R1, R1b, R3, R4, R7.

Exit status: 0 clean, 1 violations (one line each on stdout), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Shared vocabulary — tools/tmcheck/rules.py imports these so both tools
# agree exactly; change them here, never fork them there.
#
# How far above an occurrence a justification comment may sit (a small
# comment block covering a short cluster of related operations).
RULE_WINDOW = 6

PROTOCOL_ACCESS_DIRS = ("src/core", "src/stm", "src/tm")
ALIGNMENT_DIRS = ("src/core", "src/stm", "src/sim", "src/sig", "src/util")
PROTOCOL_HEADER_DIRS = ("src/core", "src/stm", "src/sim", "src/sig")

# Macro definition headers: R6 skips them (they define, not use, the markers).
R6_EXEMPT_FILES = ("src/util/annotations.hpp", "src/util/mc_hooks.hpp")
R6_EXEMPT_DIRS = ("src/mc",)

# R8 skips the header that *defines* cpu_relax (a definition is not a spin).
R8_EXEMPT_FILES = ("src/util/cacheline.hpp",)

# R6c: the reviewed happens-before edge inventory. Keys are the pairing
# tails (trailing member of the annotated address); values say which
# DESIGN.md-documented edge the annotation encodes.
KNOWN_HB_EDGE_TAILS = {
    "doom": "doom-latch edge: doomer's store vs. the doomed owner's cleanup",
    "seq": "ring-slot seqlock: publisher's closing seq store vs. a "
           "validator's recheck",
}

# R6d: fields that must never be annotated or marked, with the reason.
ANNOTATION_FORBIDDEN_TAILS = {
    "tag": "monitor-entry identity seqlock word — natively std::atomic; fix "
           "the ordering, don't annotate over it",
    "readers": "monitor-entry reader bitmap — natively std::atomic; fix the "
               "ordering, don't annotate over it",
    "writer": "monitor-entry writer slot — natively std::atomic; fix the "
              "ordering, don't annotate over it",
    "validated_ts": "owner-private ring-validation watermark — no "
                    "cross-thread edge exists to annotate",
}

ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:alignas\([^)]*\)\s+)?(?:Padded<\s*)?std::atomic<")
HB_ANNOT_RE = re.compile(r"\bPHTM_ANNOTATE_HAPPENS_(BEFORE|AFTER)\s*\(([^()]*)\)")
MC_MARKER_RE = re.compile(r"\bPHTM_MC_(?:YIELD|SPIN)\s*\(([^()]*)\)")
# Trailing identifier of an address expression: the pairing key for R6a.
ADDR_TAIL_RE = re.compile(r"(\w+)\W*$")
STRUCT_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?(struct|class)\s+"
                       r"(?:alignas\([^)]*\)\s+)?(\w+)")
# R8: spin-loop poll sites.
CPU_RELAX_RE = re.compile(r"\bcpu_relax\s*\(")
# R10: clang-tidy suppression comments.  Group 1 is the marker kind,
# group 2 the parenthesized check list (None when the parens are missing),
# group 3 whatever follows on the line (the justification candidate).
NOLINT_RE = re.compile(
    r"//\s*(NOLINTNEXTLINE|NOLINTBEGIN|NOLINT)(?!END)"
    r"(?:\(([^)]*)\))?(.*)$")


def strip_line_comment(line: str) -> str:
    """Drop a trailing // comment (good enough: no multiline strings here)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def has_marker(lines: list[str], i: int, marker: str) -> bool:
    """Is `marker` present on line i or within RULE_WINDOW lines above it?"""
    lo = max(0, i - RULE_WINDOW)
    return any(marker in lines[j] for j in range(lo, i + 1))


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.errors: list[str] = []
        # R6a: (kind, tail) -> first occurrence, collected across the tree.
        self.hb_annotations: list[tuple[str, str, Path, int]] = []

    def err(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.errors.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # R1/R1b migrated to tools/tmcheck (alias-resolved member typing; see
    # the deprecation note in the module docstring).

    # -- R2 ----------------------------------------------------------------
    def check_alignment(self, path: Path, lines: list[str]) -> None:
        # Track the innermost struct/class declaration preceding each atomic
        # member; brace counting keeps nesting honest enough for this tree.
        stack: list[tuple[str, bool, int]] = []  # (name, aligned, lineno)
        depth = 0
        pending: tuple[str, bool, int] | None = None
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            m = STRUCT_RE.match(code)
            if m and not code.rstrip().endswith(";"):
                pending = (m.group(2), "alignas" in code, i + 1)
            for ch in code:
                if ch == "{":
                    if pending is not None:
                        stack.append(pending)
                        pending = None
                    else:
                        stack.append(("", True, i + 1))  # non-type scope
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if stack:
                        stack.pop()
            if ATOMIC_MEMBER_RE.search(code):
                member_padded = ("alignas" in code or "Padded<" in code)
                owner = next((s for s in reversed(stack) if s[0]), None)
                if owner and not owner[1] and not member_padded:
                    self.err(path, i + 1, "R2",
                             f"std::atomic member of '{owner[0]}' (line "
                             f"{owner[2]}) without alignas(kCacheLineBytes) on "
                             "the type or padding on the member")

    # R3 migrated to tools/tmcheck (order resolution through typedefs,
    # named constants and default arguments — the regex only ever saw the
    # literal `memory_order_relaxed` token).
    # R4 migrated to tools/tmcheck (adds alias-resolved blocking-type
    # members and use sites on top of the include check).

    # -- R5 ----------------------------------------------------------------
    def check_suppressions(self) -> None:
        supp = self.root / "tsan.supp"
        if not supp.is_file():
            return
        for i, line in enumerate(supp.read_text().splitlines()):
            body = line.split("#", 1)[0].strip()
            if body.startswith("race:") and "phtm" in body:
                self.err(supp, i + 1, "R5",
                         "tsan.supp suppresses a phtm:: symbol; fix the race "
                         "or annotate the site (util/annotations.hpp) instead")

    # R7 migrated to tools/tmcheck (interprocedural: the analyzer follows
    # the cross-TU call graph from every speculative root, so an emission
    # N calls below an rt.attempt() lambda is caught; the old single-file
    # span scan could only see emissions textually inside the span).

    # -- R8 ----------------------------------------------------------------
    def check_spin_discipline(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            if not CPU_RELAX_RE.search(strip_line_comment(line)):
                continue
            if has_marker(lines, i, "spin-escalates:"):
                continue
            if has_marker(lines, i, "spin-waiver:"):
                continue
            self.err(path, i + 1, "R8",
                     "cpu_relax() poll without a starvation story: escalate "
                     "through a bounded-wait detector ('// spin-escalates:') "
                     "or argue the wait is finite ('// spin-waiver:')")

    # -- R10 ---------------------------------------------------------------
    def check_tidy_suppressions(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            m = NOLINT_RE.search(line)
            if not m:
                continue
            kind, checks, rest = m.group(1), m.group(2), m.group(3)
            if checks is None or not checks.strip():
                self.err(path, i + 1, "R10",
                         f"bare {kind} silences every clang-tidy check on the "
                         "line, including ones added later; name the "
                         f"suppressed check(s): // {kind}(check-name): why")
                continue
            justification = rest.lstrip(":- ").strip()
            if not justification:
                self.err(path, i + 1, "R10",
                         f"{kind}({checks.strip()}) without a justification; "
                         "append the reason on the same comment line: "
                         f"// {kind}({checks.strip()}): why this is a false "
                         "positive / acceptable here")

    # -- R6 ----------------------------------------------------------------
    def check_annotation_discipline(self, path: Path, lines: list[str]) -> None:
        for i, line in enumerate(lines):
            code = strip_line_comment(line)
            for m in HB_ANNOT_RE.finditer(code):
                tail = ADDR_TAIL_RE.search(m.group(2))
                if tail is None:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} with no identifiable "
                             "address expression")
                elif tail.group(1) in ANNOTATION_FORBIDDEN_TAILS:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} on '...{tail.group(1)}': "
                             f"{ANNOTATION_FORBIDDEN_TAILS[tail.group(1)]}")
                elif tail.group(1) not in KNOWN_HB_EDGE_TAILS:
                    self.err(path, i + 1, "R6",
                             f"HAPPENS_{m.group(1)} on '...{tail.group(1)}' is "
                             "not in the reviewed edge inventory "
                             "(KNOWN_HB_EDGE_TAILS); document the new edge in "
                             "DESIGN.md and add it there")
                else:
                    self.hb_annotations.append(
                        (m.group(1), tail.group(1), path, i + 1))
            mc = MC_MARKER_RE.search(code)
            if mc:
                if not has_marker(lines, i, "mc-yield:"):
                    self.err(path, i + 1, "R6",
                             "PHTM_MC yield/spin marker without an "
                             "'// mc-yield:' justification — every scheduling "
                             "decision point must say why it is one")
                mc_tail = ADDR_TAIL_RE.search(mc.group(1))
                if mc_tail and mc_tail.group(1) in ANNOTATION_FORBIDDEN_TAILS:
                    self.err(path, i + 1, "R6",
                             f"MC marker on '...{mc_tail.group(1)}': "
                             f"{ANNOTATION_FORBIDDEN_TAILS[mc_tail.group(1)]}")

    def check_annotation_pairing(self) -> None:
        tails = {"BEFORE": {}, "AFTER": {}}
        for kind, tail, path, lineno in self.hb_annotations:
            tails[kind].setdefault(tail, (path, lineno))
        for kind, other in (("BEFORE", "AFTER"), ("AFTER", "BEFORE")):
            for tail, (path, lineno) in tails[kind].items():
                if tail not in tails[other]:
                    self.err(path, lineno, "R6",
                             f"HAPPENS_{kind} on '...{tail}' has no matching "
                             f"HAPPENS_{other} anywhere in src/ — an unpaired "
                             "annotation edge hides or invents a "
                             "synchronization order")

    # ----------------------------------------------------------------------
    def run(self) -> int:
        src = self.root / "src"
        if not src.is_dir():
            print(f"lint_tm: no src/ under {self.root}", file=sys.stderr)
            return 2
        scan_roots = [src]
        tests = self.root / "tests"
        if tests.is_dir():
            scan_roots.append(tests)  # R10 only below; see the rel gate
        for scan_root in scan_roots:
            for path in sorted(scan_root.rglob("*")):
                if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
                    continue
                rel = path.relative_to(self.root).as_posix()
                lines = path.read_text().splitlines()
                self.check_tidy_suppressions(path, lines)
                if not rel.startswith("src/"):
                    continue
                if rel.startswith(ALIGNMENT_DIRS):
                    self.check_alignment(path, lines)
                if rel not in R6_EXEMPT_FILES and not rel.startswith(R6_EXEMPT_DIRS):
                    self.check_annotation_discipline(path, lines)
                if rel not in R8_EXEMPT_FILES:
                    self.check_spin_discipline(path, lines)
        self.check_annotation_pairing()
        self.check_suppressions()

        if self.errors:
            for e in self.errors:
                print(e)
            print(f"lint_tm: {len(self.errors)} violation(s)", file=sys.stderr)
            return 1
        print("lint_tm: clean")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout containing this script)")
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
