#!/usr/bin/env python3
"""Self-tests for tools/lint_tm.py.

The linter guards the protocol's concurrency discipline, so the linter
itself needs a regression net: each rule gets a minimal fixture tree that
must trigger it and a sibling fixture that must stay clean.  Runs as the
`lint_tm_selftest` CTest target.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_tm import Linter  # noqa: E402


def run_lint(files: dict[str, str]) -> list[str]:
    """Materialize `files` (path -> contents) in a temp root and lint it."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rel, text in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text)
        (root / "src").mkdir(exist_ok=True)
        linter = Linter(root)
        linter.run()
        return linter.errors


def rules_of(errors: list[str]) -> set[str]:
    return {e.split("[", 1)[1].split("]", 1)[0] for e in errors}


class R1RawAtomic(unittest.TestCase):
    def test_unjustified_raw_atomic_flagged(self):
        errs = run_lint({"src/core/x.hpp": "auto v = __atomic_load_n(p, 0);\n"})
        self.assertIn("R1", rules_of(errs))

    def test_justified_raw_atomic_clean(self):
        errs = run_lint({
            "src/core/x.hpp":
                "// raw-atomic: scratch word private to this worker\n"
                "auto v = __atomic_load_n(p, 0);\n"})
        self.assertNotIn("R1", rules_of(errs))


class R3Relaxed(unittest.TestCase):
    def test_unjustified_relaxed_flagged(self):
        errs = run_lint({
            "src/sim/x.hpp": "x.load(std::memory_order_relaxed);\n"})
        self.assertIn("R3", rules_of(errs))

    def test_justified_relaxed_clean(self):
        errs = run_lint({
            "src/sim/x.hpp":
                "// relaxed: counter read outside any protocol decision\n"
                "x.load(std::memory_order_relaxed);\n"})
        self.assertNotIn("R3", rules_of(errs))


class R8SpinDiscipline(unittest.TestCase):
    def test_bare_spin_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp": "while (locked(p)) cpu_relax();\n"})
        self.assertIn("R8", rules_of(errs))

    def test_escalation_marker_clean(self):
        errs = run_lint({
            "src/core/x.hpp":
                "// spin-escalates: guard.exhausted() routes to slow path\n"
                "while (locked(p)) cpu_relax();\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_waiver_marker_clean(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "// spin-waiver: holder runs one finite critical section\n"
                "while (locked(p)) cpu_relax();\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_marker_window_is_bounded(self):
        filler = "int a;\n" * 7  # marker > RULE_WINDOW lines above the spin
        errs = run_lint({
            "src/stm/x.hpp":
                "// spin-waiver: too far away\n" + filler +
                "while (locked(p)) cpu_relax();\n"})
        self.assertIn("R8", rules_of(errs))

    def test_definition_header_exempt(self):
        errs = run_lint({
            "src/util/cacheline.hpp":
                "inline void cpu_relax() noexcept { __builtin_ia32_pause(); }\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_mention_in_comment_not_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp": "int x;  // then cpu_relax() until free\n"})
        self.assertNotIn("R8", rules_of(errs))


class R6McMarkers(unittest.TestCase):
    def test_unjustified_marker_flagged(self):
        errs = run_lint({
            "src/core/x.hpp": "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_unjustified_spin_flagged(self):
        errs = run_lint({"src/stm/x.hpp": "PHTM_MC_SPIN(&lc_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_justified_marker_clean(self):
        errs = run_lint({
            "src/core/x.hpp":
                "// mc-yield: glock subscription races the slow path\n"
                "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertEqual(errs, [])

    def test_justification_window_is_bounded(self):
        filler = "int a;\n" * 7  # marker > RULE_WINDOW lines below the tag
        errs = run_lint({
            "src/core/x.hpp":
                "// mc-yield: too far away\n" + filler +
                "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_definition_headers_exempt(self):
        errs = run_lint({
            "src/util/mc_hooks.hpp": "#define PHTM_MC_SPIN(addr) ((void)0)\n",
            "src/mc/sched.cpp": "PHTM_MC_YIELD(kNtLoad, p);\n"})
        self.assertEqual(errs, [])


class R6AnnotationPairing(unittest.TestCase):
    def test_unpaired_before_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_unpaired_after_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_AFTER(&s.doom);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_pairing_is_by_trailing_member(self):
        # Different base expressions, same member: that is a pair.
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n",
            "src/sim/y.cpp":
                "PHTM_ANNOTATE_HAPPENS_AFTER(&slots_[victim].doom);\n"})
        self.assertEqual(errs, [])

    def test_mismatched_members_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n"
                "PHTM_ANNOTATE_HAPPENS_AFTER(&s.seq);\n"})
        self.assertIn("R6", rules_of(errs))


class R6EdgeInventory(unittest.TestCase):
    def test_known_edge_pair_clean(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.seq);\n"
                             "PHTM_ANNOTATE_HAPPENS_AFTER(&s.seq);\n"})
        self.assertEqual(errs, [])

    def test_unknown_edge_tail_flagged(self):
        # Even a correctly paired annotation is rejected when the edge is
        # not in the reviewed inventory.
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.latch);\n"
                             "PHTM_ANNOTATE_HAPPENS_AFTER(&s.latch);\n"})
        self.assertIn("R6", rules_of(errs))
        self.assertTrue(any("inventory" in e for e in errs))


class R6ForbiddenFields(unittest.TestCase):
    def test_annotation_on_seqlock_guarded_entry_field_flagged(self):
        for field in ("tag", "readers", "writer"):
            errs = run_lint({
                "src/sim/x.cpp":
                    f"PHTM_ANNOTATE_HAPPENS_BEFORE(&e.{field});\n"
                    f"PHTM_ANNOTATE_HAPPENS_AFTER(&e.{field});\n"})
            self.assertIn("R6", rules_of(errs), field)
            self.assertTrue(any("std::atomic" in e for e in errs), field)

    def test_annotation_on_private_watermark_flagged(self):
        errs = run_lint({
            "src/core/x.cpp":
                "PHTM_ANNOTATE_HAPPENS_BEFORE(&w.validated_ts);\n"
                "PHTM_ANNOTATE_HAPPENS_AFTER(&w.validated_ts);\n"})
        self.assertIn("R6", rules_of(errs))
        self.assertTrue(any("owner-private" in e for e in errs))

    def test_mc_marker_on_forbidden_field_flagged_despite_justification(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "// mc-yield: plausible-sounding but wrong\n"
                "PHTM_MC_YIELD(kNtLoad, &e.readers);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_mc_marker_on_ordinary_address_clean(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "// mc-yield: strong-atomicity load is a decision point\n"
                "PHTM_MC_YIELD(kNtLoad, addr);\n"})
        self.assertEqual(errs, [])


class R7TraceEmission(unittest.TestCase):
    def test_emission_inside_attempt_lambda_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "const auto r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {\n"
                "  ops.write(addr, v);\n"
                "  PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);\n"
                "});\n"})
        self.assertIn("R7", rules_of(errs))

    def test_emission_after_attempt_returns_clean(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "const auto r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {\n"
                "  ops.write(addr, v);\n"
                "});\n"
                "PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);\n"})
        self.assertNotIn("R7", rules_of(errs))

    def test_emission_inside_htmops_method_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "void HtmOps::write(std::uint64_t* a, std::uint64_t v) {\n"
                "  PHTM_TRACE_RING_PUBLISH(0, 0);\n"
                "}\n"})
        self.assertIn("R7", rules_of(errs))

    def test_emission_inside_htmops_param_function_flagged(self):
        errs = run_lint({
            "src/core/x.cpp":
                "void publish(sim::HtmOps& ops, std::uint64_t ts) {\n"
                "  PHTM_TRACE_RING_PUBLISH(ts, 0);\n"
                "}\n"})
        self.assertIn("R7", rules_of(errs))

    def test_emission_inside_ctx_holding_htmops_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "class HtmCtx {\n"
                "  void write(std::uint64_t* a, std::uint64_t v) {\n"
                "    PHTM_TRACE_SUB_BEGIN(0);\n"
                "  }\n"
                "  sim::HtmOps& ops_;\n"
                "};\n"})
        self.assertIn("R7", rules_of(errs))

    def test_backend_merely_nesting_a_ctx_class_clean(self):
        # The innermost-class attribution: an outer backend that *contains*
        # an HtmOps-holding context class is not itself speculative.
        errs = run_lint({
            "src/stm/x.hpp":
                "class Backend {\n"
                "  class HtmCtx {\n"
                "    sim::HtmOps& ops_;\n"
                "  };\n"
                "  void execute() {\n"
                "    PHTM_TRACE_TX_BEGIN();\n"
                "  }\n"
                "};\n"})
        self.assertNotIn("R7", rules_of(errs))

    def test_buffering_macros_exempt(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "void HtmOps::write(std::uint64_t* a, std::uint64_t v) {\n"
                "  PHTM_TRACE_TXN_ENTER();\n"
                "  PHTM_TRACE_TXN_EXIT();\n"
                "}\n"})
        self.assertNotIn("R7", rules_of(errs))

    def test_justified_deferral_clean(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "void f(sim::HtmOps& ops) {\n"
                "  // trace-deferred: doom is a real side effect; the\n"
                "  // runtime's pending array flushes it post-outcome\n"
                "  PHTM_TRACE_DOOM(0, 0, 0);\n"
                "}\n"})
        self.assertNotIn("R7", rules_of(errs))


class RealTreeIsClean(unittest.TestCase):
    def test_repository_lints_clean(self):
        root = Path(__file__).resolve().parent.parent
        linter = Linter(root)
        self.assertEqual(linter.run(), 0, "\n".join(linter.errors))


if __name__ == "__main__":
    unittest.main()
