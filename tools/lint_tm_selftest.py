#!/usr/bin/env python3
"""Self-tests for tools/lint_tm.py.

The linter guards the protocol's concurrency discipline, so the linter
itself needs a regression net: each rule gets a minimal fixture tree that
must trigger it and a sibling fixture that must stay clean.  Runs as the
`lint_tm_selftest` CTest target.

R1/R1b/R3/R4/R7 moved to tools/tmcheck/ — their fixtures now live in the
tmcheck selftest corpus (tools/tmcheck/selftest/, exact-findings asserted
by tools/tmcheck/tmcheck_selftest.py) so no rule is tested, or enforced,
in two places.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_tm import Linter  # noqa: E402


def run_lint(files: dict[str, str]) -> list[str]:
    """Materialize `files` (path -> contents) in a temp root and lint it."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rel, text in files.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text)
        (root / "src").mkdir(exist_ok=True)
        linter = Linter(root)
        linter.run()
        return linter.errors


def rules_of(errors: list[str]) -> set[str]:
    return {e.split("[", 1)[1].split("]", 1)[0] for e in errors}


class MigratedRulesStayMigrated(unittest.TestCase):
    """R1/R1b/R3/R4/R7 must NOT fire from this linter any more — each rule
    is enforced in exactly one tool (they live in tools/tmcheck now)."""

    def test_raw_atomic_not_flagged_here(self):
        errs = run_lint({"src/core/x.hpp": "auto v = __atomic_load_n(p, 0);\n"})
        self.assertNotIn("R1", rules_of(errs))

    def test_relaxed_not_flagged_here(self):
        errs = run_lint({
            "src/sim/x.hpp": "x.load(std::memory_order_relaxed);\n"})
        self.assertNotIn("R3", rules_of(errs))

    def test_mutex_include_not_flagged_here(self):
        errs = run_lint({"src/sim/x.hpp": "#include <mutex>\n"})
        self.assertNotIn("R4", rules_of(errs))

    def test_trace_in_attempt_not_flagged_here(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "const auto r = rt_.attempt(w.th, [&](sim::HtmOps& ops) {\n"
                "  PHTM_TRACE_TX_COMMIT(CommitPath::kHtm);\n"
                "});\n"})
        self.assertNotIn("R7", rules_of(errs))


class R8SpinDiscipline(unittest.TestCase):
    def test_bare_spin_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp": "while (locked(p)) cpu_relax();\n"})
        self.assertIn("R8", rules_of(errs))

    def test_escalation_marker_clean(self):
        errs = run_lint({
            "src/core/x.hpp":
                "// spin-escalates: guard.exhausted() routes to slow path\n"
                "while (locked(p)) cpu_relax();\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_waiver_marker_clean(self):
        errs = run_lint({
            "src/stm/x.hpp":
                "// spin-waiver: holder runs one finite critical section\n"
                "while (locked(p)) cpu_relax();\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_marker_window_is_bounded(self):
        filler = "int a;\n" * 7  # marker > RULE_WINDOW lines above the spin
        errs = run_lint({
            "src/stm/x.hpp":
                "// spin-waiver: too far away\n" + filler +
                "while (locked(p)) cpu_relax();\n"})
        self.assertIn("R8", rules_of(errs))

    def test_definition_header_exempt(self):
        errs = run_lint({
            "src/util/cacheline.hpp":
                "inline void cpu_relax() noexcept { __builtin_ia32_pause(); }\n"})
        self.assertNotIn("R8", rules_of(errs))

    def test_mention_in_comment_not_flagged(self):
        errs = run_lint({
            "src/stm/x.hpp": "int x;  // then cpu_relax() until free\n"})
        self.assertNotIn("R8", rules_of(errs))


class R6McMarkers(unittest.TestCase):
    def test_unjustified_marker_flagged(self):
        errs = run_lint({
            "src/core/x.hpp": "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_unjustified_spin_flagged(self):
        errs = run_lint({"src/stm/x.hpp": "PHTM_MC_SPIN(&lc_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_justified_marker_clean(self):
        errs = run_lint({
            "src/core/x.hpp":
                "// mc-yield: glock subscription races the slow path\n"
                "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertEqual(errs, [])

    def test_justification_window_is_bounded(self):
        filler = "int a;\n" * 7  # marker > RULE_WINDOW lines below the tag
        errs = run_lint({
            "src/core/x.hpp":
                "// mc-yield: too far away\n" + filler +
                "PHTM_MC_YIELD(kNtLoad, &glock_.value);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_definition_headers_exempt(self):
        errs = run_lint({
            "src/util/mc_hooks.hpp": "#define PHTM_MC_SPIN(addr) ((void)0)\n",
            "src/mc/sched.cpp": "PHTM_MC_YIELD(kNtLoad, p);\n"})
        self.assertEqual(errs, [])


class R6AnnotationPairing(unittest.TestCase):
    def test_unpaired_before_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_unpaired_after_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_AFTER(&s.doom);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_pairing_is_by_trailing_member(self):
        # Different base expressions, same member: that is a pair.
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n",
            "src/sim/y.cpp":
                "PHTM_ANNOTATE_HAPPENS_AFTER(&slots_[victim].doom);\n"})
        self.assertEqual(errs, [])

    def test_mismatched_members_flagged(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.doom);\n"
                "PHTM_ANNOTATE_HAPPENS_AFTER(&s.seq);\n"})
        self.assertIn("R6", rules_of(errs))


class R6EdgeInventory(unittest.TestCase):
    def test_known_edge_pair_clean(self):
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.seq);\n"
                             "PHTM_ANNOTATE_HAPPENS_AFTER(&s.seq);\n"})
        self.assertEqual(errs, [])

    def test_unknown_edge_tail_flagged(self):
        # Even a correctly paired annotation is rejected when the edge is
        # not in the reviewed inventory.
        errs = run_lint({
            "src/sim/x.cpp": "PHTM_ANNOTATE_HAPPENS_BEFORE(&s.latch);\n"
                             "PHTM_ANNOTATE_HAPPENS_AFTER(&s.latch);\n"})
        self.assertIn("R6", rules_of(errs))
        self.assertTrue(any("inventory" in e for e in errs))


class R6ForbiddenFields(unittest.TestCase):
    def test_annotation_on_seqlock_guarded_entry_field_flagged(self):
        for field in ("tag", "readers", "writer"):
            errs = run_lint({
                "src/sim/x.cpp":
                    f"PHTM_ANNOTATE_HAPPENS_BEFORE(&e.{field});\n"
                    f"PHTM_ANNOTATE_HAPPENS_AFTER(&e.{field});\n"})
            self.assertIn("R6", rules_of(errs), field)
            self.assertTrue(any("std::atomic" in e for e in errs), field)

    def test_annotation_on_private_watermark_flagged(self):
        errs = run_lint({
            "src/core/x.cpp":
                "PHTM_ANNOTATE_HAPPENS_BEFORE(&w.validated_ts);\n"
                "PHTM_ANNOTATE_HAPPENS_AFTER(&w.validated_ts);\n"})
        self.assertIn("R6", rules_of(errs))
        self.assertTrue(any("owner-private" in e for e in errs))

    def test_mc_marker_on_forbidden_field_flagged_despite_justification(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "// mc-yield: plausible-sounding but wrong\n"
                "PHTM_MC_YIELD(kNtLoad, &e.readers);\n"})
        self.assertIn("R6", rules_of(errs))

    def test_mc_marker_on_ordinary_address_clean(self):
        errs = run_lint({
            "src/sim/x.cpp":
                "// mc-yield: strong-atomicity load is a decision point\n"
                "PHTM_MC_YIELD(kNtLoad, addr);\n"})
        self.assertEqual(errs, [])


class R10TidySuppressions(unittest.TestCase):
    def test_bare_nolint_flagged(self):
        errs = run_lint({
            "src/sim/x.hpp": "int* p = (int*)q;  // NOLINT\n"})
        self.assertIn("R10", rules_of(errs))

    def test_nolintnextline_without_checks_flagged(self):
        errs = run_lint({
            "src/sim/x.hpp": "// NOLINTNEXTLINE\nint* p = (int*)q;\n"})
        self.assertIn("R10", rules_of(errs))

    def test_named_check_without_justification_flagged(self):
        errs = run_lint({
            "src/sim/x.hpp":
                "// NOLINTNEXTLINE(bugprone-casting-through-void)\n"
                "int* p = (int*)q;\n"})
        self.assertIn("R10", rules_of(errs))

    def test_named_check_with_justification_clean(self):
        errs = run_lint({
            "src/sim/x.hpp":
                "// NOLINTNEXTLINE(bugprone-casting-through-void): the\n"
                "int* p = (int*)q;\n"})
        self.assertNotIn("R10", rules_of(errs))

    def test_applies_to_tests_tree_too(self):
        errs = run_lint({
            "src/core/keep.hpp": "int x;\n",
            "tests/foo_test.cpp": "f();  // NOLINT\n"})
        self.assertIn("R10", rules_of(errs))

    def test_nolintend_not_flagged(self):
        # NOLINTEND closes a justified NOLINTBEGIN block; only the BEGIN
        # carries the check list and reason.
        errs = run_lint({
            "src/sim/x.hpp":
                "// NOLINTBEGIN(concurrency-mt-unsafe): bench-only helper\n"
                "f();\n"
                "// NOLINTEND(concurrency-mt-unsafe)\n"})
        self.assertNotIn("R10", rules_of(errs))


class RealTreeIsClean(unittest.TestCase):
    def test_repository_lints_clean(self):
        root = Path(__file__).resolve().parent.parent
        linter = Linter(root)
        self.assertEqual(linter.run(), 0, "\n".join(linter.errors))


if __name__ == "__main__":
    unittest.main()
