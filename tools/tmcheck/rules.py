"""tmcheck rule engine: frontend-agnostic checks over the Program model.

Owns the deep rules migrated out of the regex lint (tools/lint_tm.py):

  R1  raw __atomic_* / __sync_* builtins in the protocol layer
      (waiver: `raw-atomic:`)
  R1b std::atomic member declarations in the protocol layer, resolved
      through type aliases (waiver: `shared-atomic:`)
  R3  relaxed atomics need a justification — the memory order is resolved
      through constexpr order constants, typedefs and default arguments,
      not just the literal `memory_order_relaxed` token
      (waiver: `relaxed:`)
  R4  blocking primitives in protocol code: <mutex>-family includes in
      protocol headers, plus any std::mutex/condition_variable/... type
      use or alias-resolved member declaration in the protocol layer
  R7  interprocedural speculative-span purity: everything reachable from
      a speculative root (rt.attempt() lambda, HtmOps:: method, function
      taking HtmOps&, method of a class holding HtmOps&) must not
      allocate, take a blocking lock, do I/O, or emit trace records —
      at ANY call depth through the cross-TU call graph
      (waivers: `trace-deferred:` for trace sites, `span-waiver:` for
      everything else — at the impure site, at a call edge, or at the
      root)
  R9  happens-before edge discipline: acquire/release atomics grouped by
      canonicalized address tail, cross-checked against the reviewed
      R6c inventory imported from lint_tm.py (one source of truth);
      detects unpaired (never-released / never-acquired) edges and
      inventory edges with no atomics at all.

The justification-marker window semantics (same line or <= RULE_WINDOW
lines above) are imported from lint_tm so both tools agree exactly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from lint_tm import (  # noqa: E402  (one source of truth for these)
    ANNOTATION_FORBIDDEN_TAILS,
    KNOWN_HB_EDGE_TAILS,
    PROTOCOL_ACCESS_DIRS,
    PROTOCOL_HEADER_DIRS,
    RULE_WINDOW,
    has_marker,
)

from tmmodel.model import (  # noqa: E402
    AMBIGUOUS_CALL_NAMES,
    AtomicOp,
    FileModel,
    FunctionInfo,
    Program,
)

TRACE_EMISSION_DIRS = ("src/core", "src/stm", "src/sim", "src/tm", "src/sig")

MUTEX_HEADERS = ("mutex", "shared_mutex", "condition_variable")

IMPURITY_VERB = {
    "trace": "emits trace records",
    "alloc": "can allocate",
    "io": "performs I/O",
    "os-block": "can block on the OS",
}


@dataclass
class Finding:
    rule: str
    rel: str
    line: int
    message: str
    chain: list = field(default_factory=list)  # R7 call chain, root first

    def key(self):
        return (self.rule, self.rel, self.line)

    def to_json(self):
        d = {"rule": self.rule, "file": self.rel, "line": self.line,
             "message": self.message}
        if self.chain:
            d["chain"] = self.chain
        return d

    def render(self) -> str:
        s = f"{self.rel}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            s += "\n    call chain: " + " -> ".join(self.chain)
        return s


def _marked(fm: FileModel, line: int, marker: str) -> bool:
    return has_marker(fm.lines, line - 1, marker)


class RuleEngine:
    def __init__(self, prog: Program):
        self.prog = prog
        self.findings: list[Finding] = []
        self.hb_graph: dict = {}

    def err(self, rule, fm_or_rel, line, msg, chain=None):
        rel = fm_or_rel.rel if isinstance(fm_or_rel, FileModel) else fm_or_rel
        self.findings.append(Finding(rule, rel, line, msg, chain or []))

    def run(self) -> list[Finding]:
        for fm in self.prog.files:
            if fm.rel.startswith(PROTOCOL_ACCESS_DIRS):
                self.check_r1(fm)
                self.check_r1b(fm)
            self.check_r3(fm)
            self.check_r4(fm)
        self.check_r7()
        self.check_r9()
        self.findings.sort(key=lambda f: (f.rel, f.line, f.rule))
        return self.findings

    # -- R1 / R1b ----------------------------------------------------------
    def check_r1(self, fm: FileModel) -> None:
        for fn in fm.functions:
            for name, line in fn.raw_atomics:
                if _marked(fm, line, "raw-atomic:"):
                    continue
                self.err("R1", fm, line,
                         f"raw {name} builtin in the protocol layer; route "
                         "through nontx_*/HtmOps or justify with "
                         "'// raw-atomic:'")

    def check_r1b(self, fm: FileModel) -> None:
        for m in fm.members:
            if not m.is_atomic or _marked(fm, m.line, "shared-atomic:"):
                continue
            self.err("R1b", fm, m.line,
                     "std::atomic member (alias-resolved) in the protocol "
                     "layer; protocol-shared words are plain uint64_t behind "
                     "nontx_* — justify with '// shared-atomic:'")

    # -- R3 ----------------------------------------------------------------
    def check_r3(self, fm: FileModel) -> None:
        for fn in fm.functions:
            for op in fn.atomics:
                relaxed_via = None
                if op.order == "relaxed":
                    relaxed_via = op.order_source
                elif op.kind == "cas" and op.fail_order == "relaxed":
                    relaxed_via = "cas-failure-order"
                if relaxed_via is None:
                    continue
                if _marked(fm, op.line, "relaxed:"):
                    continue
                how = {"explicit": "written explicitly",
                       "cas-failure-order": "the CAS failure order"}.get(
                    relaxed_via, f"resolved through {relaxed_via}")
                self.err("R3", fm, op.line,
                         f"{op.op} on '{op.addr}' is memory_order_relaxed "
                         f"({how}) without a '// relaxed:' justification")

    # -- R4 ----------------------------------------------------------------
    def check_r4(self, fm: FileModel) -> None:
        # Same scope the regex rule had: core/stm/sim/sig. src/tm stays out
        # deliberately (the TM-heap allocator owns a real mutex; R7 still
        # proves nothing speculative can reach it).
        protocol_header = (fm.rel.startswith(PROTOCOL_HEADER_DIRS)
                           and fm.rel.endswith(".hpp"))
        protocol = fm.rel.startswith(PROTOCOL_HEADER_DIRS)
        if protocol_header:
            for header, line in fm.includes:
                if header in MUTEX_HEADERS:
                    self.err("R4", fm, line,
                             f"protocol header includes <{header}>; the "
                             "protocol layer is spinlock/atomic only")
        if protocol:
            member_lines = set()
            for m in fm.members:
                if m.is_blocking:
                    member_lines.add(m.line)
                    self.err("R4", fm, m.line,
                             "blocking-type member (alias-resolved) in the "
                             "protocol layer")
            for text, line in fm.blocking_uses:
                if line in member_lines:
                    continue  # already reported as a member declaration
                self.err("R4", fm, line,
                         f"{text} used in the protocol layer; the protocol "
                         "is lock-free except simulator-internal spinlocks")

    # -- R7 ----------------------------------------------------------------
    def check_r7(self) -> None:
        files = {fm.rel: fm for fm in self.prog.files}
        defs = self.prog.defs_by_base()

        def fn_impurities(fn: FunctionInfo):
            out = []
            fm = files[fn.rel]
            for imp in fn.impurities:
                marker = ("trace-deferred:" if imp.kind == "trace"
                          else "span-waiver:")
                if not _marked(fm, imp.line, marker):
                    out.append(imp)
            return out

        def edges(fn: FunctionInfo):
            fm = files[fn.rel]
            for call in fn.calls:
                if call.name in AMBIGUOUS_CALL_NAMES:
                    continue
                if call.name not in defs:
                    continue
                if _marked(fm, call.line, "span-waiver:"):
                    continue
                yield call, defs[call.name]

        roots = [fn for fn in self.prog.functions()
                 if fn.rel.startswith(TRACE_EMISSION_DIRS)
                 and fn.root_reason()]
        for root in roots:
            root_fm = files[root.rel]
            if _marked(root_fm, root.line, "span-waiver:"):
                continue
            # BFS over the name-resolved call graph; remember one shortest
            # path per function for the report.
            paths = {id(root): [root]}
            queue = [root]
            seen = {id(root)}
            reported = set()
            while queue:
                fn = queue.pop(0)
                path = paths[id(fn)]
                for imp in fn_impurities(fn):
                    key = (imp.kind, fn.rel, imp.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    chain = [f"{p.qname} ({p.rel}:{p.line})" for p in path]
                    chain.append(f"{imp.what} ({fn.rel}:{imp.line})")
                    depth = len(path) - 1
                    via = ("directly" if depth == 0 else
                           f"{depth} call{'s' if depth > 1 else ''} deep")
                    self.err(
                        "R7", root.rel, root.line,
                        f"speculative span '{root.qname}' "
                        f"({root.root_reason()}) {IMPURITY_VERB[imp.kind]} "
                        f"{via} via {imp.what} at {fn.rel}:{imp.line}; on "
                        "real hardware this becomes transactional state "
                        "rolled back on abort — defer it past the commit "
                        "seam, or waive the site with "
                        f"""'// {'trace-deferred:' if imp.kind == 'trace'
                                 else 'span-waiver:'}'""",
                        chain=chain)
                for call, callees in edges(fn):
                    for callee in callees:
                        if id(callee) in seen:
                            continue
                        seen.add(id(callee))
                        paths[id(callee)] = path + [callee]
                        queue.append(callee)

    # -- R9 ----------------------------------------------------------------
    def check_r9(self) -> None:
        by_tail: dict[str, dict] = {}
        for fn in self.prog.functions():
            for op in fn.atomics:
                if op.kind == "fence" or not op.tail:
                    continue
                node = by_tail.setdefault(
                    op.tail, {"acquire": [], "release": [], "other": []})
                rec = {"op": op.op, "kind": op.kind, "order": op.order,
                       "addr": op.addr, "file": fn.rel, "line": op.line,
                       "function": fn.qname}
                side = _hb_side(op)
                for s in side:
                    node[s].append(rec)
                if not side:
                    node["other"].append(rec)
        self.hb_graph = {
            "schema": 1,
            "inventory": {t: KNOWN_HB_EDGE_TAILS[t]
                          for t in sorted(KNOWN_HB_EDGE_TAILS)},
            "forbidden": sorted(ANNOTATION_FORBIDDEN_TAILS),
            "edges": {t: by_tail[t] for t in sorted(by_tail)},
        }
        # Findings are restricted to the reviewed inventory: those tails
        # carry the protocol's correctness argument, so a missing side is a
        # broken happens-before edge, not style.
        for tail, why in KNOWN_HB_EDGE_TAILS.items():
            node = by_tail.get(tail)
            if node is None:
                self.err("R9", "src", 0,
                         f"HB edge '...{tail}' ({why}) is in the reviewed "
                         "inventory but no atomic operation on it was found "
                         "anywhere in the tree — stale inventory entry or a "
                         "renamed field")
                continue
            if not node["release"]:
                rec = (node["acquire"] + node["other"])[0]
                self.err("R9", rec["file"], rec["line"],
                         f"HB edge '...{tail}' ({why}) is acquired but never "
                         "released: no store/rmw with release-or-stronger "
                         "order found on this address anywhere in the tree")
            if not node["acquire"]:
                rec = (node["release"] + node["other"])[0]
                self.err("R9", rec["file"], rec["line"],
                         f"HB edge '...{tail}' ({why}) is released but never "
                         "acquired: no load/rmw with acquire-or-stronger "
                         "order found on this address anywhere in the tree")


def _hb_side(op: AtomicOp) -> list:
    sides = []
    acq_orders = ("acquire", "acq_rel", "seq_cst")
    rel_orders = ("release", "acq_rel", "seq_cst")
    if op.kind in ("load", "rmw", "cas") and op.order in acq_orders:
        sides.append("acquire")
    if op.kind in ("store", "rmw", "cas") and op.order in rel_orders:
        sides.append("release")
    return sides
