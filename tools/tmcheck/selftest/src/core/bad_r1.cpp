// R1 corpus: raw atomic builtins in the protocol layer (src/core).
// Orders are seq_cst so these trip R1 only, not R3.
#include <cstdint>

namespace tmcheck_selftest {

std::uint64_t g_word = 0;

// positive: __atomic_* builtin, no justification.
void r1_store_bad() {
  __atomic_store_n(&g_word, 1, __ATOMIC_SEQ_CST);
}

// positive: __sync_* legacy builtin, no justification.
std::uint64_t r1_sync_bad() {
  return __sync_fetch_and_add(&g_word, 1);
}

// negative: justified.
std::uint64_t r1_load_ok() {
  // raw-atomic: selftest negative — justified builtin is accepted.
  return __atomic_load_n(&g_word, __ATOMIC_SEQ_CST);
}

}  // namespace tmcheck_selftest
