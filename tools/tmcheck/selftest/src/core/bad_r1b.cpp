// R1b corpus: std::atomic members in the protocol layer (src/core).
#include <atomic>
#include <cstdint>

namespace tmcheck_selftest {

using HiddenWord = std::atomic<std::uint64_t>;

struct R1bHolder {
  // positive: bare std::atomic member, no justification.
  std::atomic<unsigned> plain_member{0};

  // positive: alias-resolved atomic member — a line-regex looking for
  // `std::atomic<` at the start of the declaration provably cannot see
  // through the typedef.
  HiddenWord aliased_member{0};

  // negative: justified.
  // shared-atomic: selftest negative — justified member is accepted.
  std::atomic<int> justified_member{0};
};

unsigned r1b_touch(R1bHolder& h) {
  return h.plain_member.load() + static_cast<unsigned>(
      h.aliased_member.load() + h.justified_member.load());
}

}  // namespace tmcheck_selftest
