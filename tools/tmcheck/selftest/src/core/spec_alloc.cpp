// R7 corpus: allocation reached from an rt.attempt() lambda root, plus a
// waived allocation as the negative.
#include <vector>

#include "util/stubs.hpp"

namespace tmcheck_selftest {

// positive site: allocation one call below the attempt lambda.
void log_append(std::vector<int>& log, int v) {
  log.push_back(v);
}

void scratch_reserve(std::vector<int>& scratch);

// Keep the waived helper *below* the attempt site: its span-waiver comment
// must not fall inside the RULE_WINDOW above the lambda root line.
void run_speculative(Rt& rt, std::vector<int>& log,
                     std::vector<int>& scratch) {
  rt.attempt([&] {
    log_append(log, 1);
    scratch_reserve(scratch);
  });
}

// negative: a waived allocation helper (justified growth).
void scratch_reserve(std::vector<int>& scratch) {
  // span-waiver: selftest negative — justified host-side allocation.
  scratch.reserve(64);
}

}  // namespace tmcheck_selftest
