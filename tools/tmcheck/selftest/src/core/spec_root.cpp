// R7 corpus, interprocedural positive: the speculative root lives here,
// the impurity lives two calls away in src/sim/spec_chain.cpp. This file
// contains no emission and that file contains no span pattern, so a
// line- or file-local regex provably cannot connect the two.
#include <cstdint>

#include "util/stubs.hpp"

namespace tmcheck_selftest {

void chain_level_one();
void deferred_emit();

// positive root: takes HtmOps&, so its whole call tree is speculative.
// The trace emission is reached two calls deep (chain_level_one ->
// chain_level_two).
std::uint64_t spec_read_path(HtmOps& ops, const std::uint64_t* addr) {
  chain_level_one();
  deferred_emit();
  return ops.read(addr);
}

// negative: an emission in a root's file but reachable from no root.
void report_outside_span() {
  PHTM_TRACE_TX_ABORT(0);
}

}  // namespace tmcheck_selftest
