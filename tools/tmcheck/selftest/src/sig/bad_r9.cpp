// R9 corpus: happens-before edge discipline against the reviewed
// inventory (KNOWN_HB_EDGE_TAILS, imported from lint_tm.py).
#include <atomic>
#include <cstdint>

namespace tmcheck_selftest {

struct R9State {
  std::atomic<std::uint64_t> doom{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ready{0};
};

// positive: 'doom' is an inventory edge and is acquired here, but no
// release-or-stronger store on it exists anywhere in this tree.
std::uint64_t r9_doom_probe(R9State& s) {
  return s.doom.load(std::memory_order_acquire);
}

// positive: 'seq' is an inventory edge and is released here, but no
// acquire-or-stronger load on it exists anywhere in this tree.
void r9_seq_publish(R9State& s, std::uint64_t v) {
  s.seq.store(v, std::memory_order_release);
}

// negative: 'ready' is just as unpaired, but it is not in the reviewed
// inventory — R9 reports only the edges the protocol's correctness
// argument depends on.
void r9_ready_set(R9State& s) {
  s.ready.store(1, std::memory_order_release);
}

}  // namespace tmcheck_selftest
