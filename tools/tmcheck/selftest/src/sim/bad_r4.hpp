// R4 corpus: blocking primitives in a protocol header (src/sim).
// The negative case lives in src/util/ok_r4.cpp: the same primitives in a
// non-protocol directory are silent.
#pragma once

#include <mutex>  // positive: <mutex> include in a protocol header

namespace tmcheck_selftest {

using SlowLock = std::mutex;

struct R4Holder {
  // positive: blocking member declared directly.
  std::mutex direct_mu;

  // positive: blocking member behind a typedef — invisible to an
  // include/line regex, resolved by the alias table.
  SlowLock aliased_mu;
};

}  // namespace tmcheck_selftest
