// R7 corpus, the deep half of the interprocedural case: two plain
// functions between the root (src/core/spec_root.cpp) and the emission.
// Nothing in this file looks like a speculative span.
#include "util/stubs.hpp"

namespace tmcheck_selftest {

void chain_level_two();

void chain_level_one() {
  chain_level_two();
}

// positive site (reported against the root): emission two calls below a
// speculative span.
void chain_level_two() {
  PHTM_TRACE_RING_PUBLISH(7);
}

// negative: a justified deferral is accepted even though it is reachable
// from the root in spec_root.cpp.
void deferred_emit() {
  // trace-deferred: selftest negative — deliberate deferral, justified.
  PHTM_TRACE_TX_ABORT(1);
}

}  // namespace tmcheck_selftest
