// Translation unit pulling the R4 corpus header into the compile set.
// (R4's negative case is src/util/ok_r4.cpp, outside the protocol dirs.)
#include "sim/bad_r4.hpp"

namespace tmcheck_selftest {

void r4_touch(R4Holder& h) {
  h.direct_mu.lock();
  h.direct_mu.unlock();
  h.aliased_mu.lock();
  h.aliased_mu.unlock();
}

}  // namespace tmcheck_selftest
