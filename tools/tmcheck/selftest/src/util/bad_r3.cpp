// R3 corpus: relaxed atomics without justification, including orders the
// line regex provably cannot resolve (named constants, default arguments).
#include <atomic>
#include <cstdint>

namespace tmcheck_selftest {

// The constant definition itself is justified; R3 bites at *uses*.
// relaxed: selftest — the definition line is not an atomic operation.
constexpr auto kFastOrder = std::memory_order_relaxed;

std::atomic<std::uint64_t> r3_word{0};

// positive: literal relaxed, no justification.
std::uint64_t r3_literal_bad() {
  return r3_word.load(std::memory_order_relaxed);
}

// positive: the order arrives through a named constant — invisible to a
// regex scanning for `memory_order_relaxed` on the operation's line.
std::uint64_t r3_constant_bad() {
  return r3_word.load(kFastOrder);
}

// positive: the order arrives through the function's own default
// argument; the call site below names no order at all.
void r3_store_with(std::atomic<std::uint64_t>& w, std::uint64_t v,
                   std::memory_order mo = std::memory_order_relaxed) {
  w.store(v, mo);
}

void r3_default_arg_bad() {
  r3_store_with(r3_word, 1);
}

// negative: justified relaxed.
std::uint64_t r3_ok() {
  // relaxed: selftest negative — justified relaxed load is accepted.
  return r3_word.load(std::memory_order_relaxed);
}

}  // namespace tmcheck_selftest
