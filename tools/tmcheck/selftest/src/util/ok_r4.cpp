// R4 negative: the same blocking primitive outside the protocol layer
// (src/util is not a protocol dir) produces no finding.
#include <mutex>

namespace tmcheck_selftest {

std::mutex g_harness_mu;

void r4_outside_protocol() {
  std::lock_guard<std::mutex> g(g_harness_mu);
}

}  // namespace tmcheck_selftest
