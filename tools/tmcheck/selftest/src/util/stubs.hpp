// Local stubs so the tmcheck selftest corpus compiles as a normal object
// library with the repo's flags while staying independent of the real
// runtime. The macro bodies are no-ops: tmcheck sees the *call sites*
// (macro definitions are preprocessor tokens, invisible to the scanner),
// which is exactly what the rules key on.
#pragma once

#include <cstdint>
#include <vector>

// Trace-emission stand-ins (same PHTM_TRACE_ prefix the rules match).
#define PHTM_TRACE_RING_PUBLISH(slot) do { (void)(slot); } while (0)
#define PHTM_TRACE_TX_ABORT(cause) do { (void)(cause); } while (0)

namespace tmcheck_selftest {

// Name-compatible stand-in for the simulator's transactional-access
// handle: a function taking `HtmOps&` (or an `HtmOps&` member, or an
// `rt.attempt(...)` lambda) marks a speculative root.
struct HtmOps {
  std::uint64_t read(const std::uint64_t* addr) { return *addr; }
  void write(std::uint64_t* addr, std::uint64_t v) { *addr = v; }
};

// Stand-in for HtmRuntime: anything with an attempt(lambda) seam.
struct Rt {
  template <class F>
  void attempt(F&& body) { body(); }
};

}  // namespace tmcheck_selftest
