#!/usr/bin/env python3
"""tmcheck: whole-program TM-protocol analyzer for PART-HTM.

Runs the deep protocol rules (R1/R1b/R3/R4/R7/R9 — see rules.py) over the
source tree and compares the findings against a committed baseline.

Frontends
---------
  tokens  structural token-stream frontend (tools/tmmodel: cpplex.py +
          model.py); self-contained, deterministic, the default everywhere.
  clang   clang.cindex over compile_commands.json when the python libclang
          bindings are present (tmmodel/frontend_clang.py); opt-in.
  auto    clang if available, tokens otherwise.

The compile database (CMAKE_EXPORT_COMPILE_COMMANDS) is required for the
clang frontend and, when present, is cross-checked against the scanned
file set in token mode so a TU cannot silently drop out of analysis.

Outputs
-------
  --json-out      machine-readable findings (for the CI artifact)
  --hb-graph-out  the acquire/release happens-before edge graph as JSON
  --write-baseline  regenerate the committed baseline from current findings

Exit status: 0 clean (findings match baseline exactly), 1 new or stale
findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# The rule engine lives next to this driver; the shared program-model
# frontend is the sibling tools/tmmodel package (also used by tmfoot).
sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tmmodel import frontend_clang  # noqa: E402
from tmmodel.model import load_program  # noqa: E402
from rules import RuleEngine  # noqa: E402

HERE = Path(__file__).resolve().parent
DEFAULT_ROOT = HERE.parent.parent
DEFAULT_BASELINE = HERE / "baseline.json"


def load_baseline(path: Path) -> list[dict]:
    if not path.is_file():
        return []
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "findings" not in doc:
        raise SystemExit(f"tmcheck: malformed baseline {path}")
    return doc["findings"]


def finding_key(d: dict):
    return (d["rule"], d["file"], d["line"])


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                    help="tree to analyze: must contain src/ "
                         "(default: this checkout)")
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json (default: "
                         "<root>/build/compile_commands.json if present)")
    ap.add_argument("--frontend", choices=("auto", "tokens", "clang"),
                    default="auto")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="committed findings baseline (default: "
                         "tools/tmcheck/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report raw findings; nonzero exit if any")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite --baseline from current findings")
    ap.add_argument("--json-out", type=Path, default=None,
                    help="write findings as JSON")
    ap.add_argument("--hb-graph-out", type=Path, default=None,
                    help="write the happens-before edge graph as JSON")
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"tmcheck: no src/ under {root}", file=sys.stderr)
        return 2

    cc = args.compile_commands
    if cc is None:
        cand = root / "build" / "compile_commands.json"
        cc = cand if cand.is_file() else None
    elif not cc.is_file():
        print(f"tmcheck: compile database {cc} not found", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if frontend_clang.available() else "tokens"
    if frontend == "clang":
        if not frontend_clang.available():
            print(f"tmcheck: clang frontend unavailable: "
                  f"{frontend_clang.why_unavailable()}", file=sys.stderr)
            return 2
        if cc is None:
            print("tmcheck: clang frontend needs compile_commands.json "
                  "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                  file=sys.stderr)
            return 2
        prog = frontend_clang.load_program_clang(root, cc)
    else:
        prog = load_program(root)

    # Cross-check: every TU in the compile database that lives under
    # <root>/src must be in the analyzed set (token mode scans the tree
    # directly, so a mismatch means the scan missed something real).
    if cc is not None:
        analyzed = {fm.rel for fm in prog.files}
        missing = []
        for entry in json.loads(cc.read_text()):
            p = (Path(entry.get("directory", ".")) / entry["file"]).resolve()
            try:
                rel = p.relative_to(root).as_posix()
            except ValueError:
                continue
            if rel.startswith("src/") and rel not in analyzed:
                missing.append(rel)
        if missing:
            print(f"tmcheck: {len(missing)} TU(s) in the compile database "
                  f"were not analyzed: {', '.join(sorted(missing)[:5])}",
                  file=sys.stderr)
            return 2

    engine = RuleEngine(prog)
    findings = engine.run()
    found_json = [f.to_json() for f in findings]

    if args.hb_graph_out:
        args.hb_graph_out.parent.mkdir(parents=True, exist_ok=True)
        args.hb_graph_out.write_text(
            json.dumps(engine.hb_graph, indent=1) + "\n")
    if args.json_out:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(
            {"schema": 1, "frontend": frontend, "root": str(root),
             "findings": found_json}, indent=1) + "\n")

    if args.write_baseline:
        args.baseline.write_text(json.dumps(
            {"schema": 1,
             "comment": "tmcheck zero-findings baseline; regenerate with "
                        "tools/tmcheck/tmcheck.py --write-baseline "
                        "(see EXPERIMENTS.md)",
             "findings": found_json}, indent=1) + "\n")
        print(f"tmcheck: wrote {len(found_json)} finding(s) to "
              f"{args.baseline}")
        return 0

    if args.no_baseline:
        for f in findings:
            print(f.render())
        status = 1 if findings else 0
        print(f"tmcheck[{frontend}]: {len(findings)} finding(s) over "
              f"{len(prog.files)} file(s)"
              + ("" if findings else " — clean"),
              file=sys.stderr if findings else sys.stdout)
        return status

    baseline = {finding_key(d) for d in load_baseline(args.baseline)}
    new = [f for f in findings if f.key() not in baseline]
    current = {f.key() for f in findings}
    stale = [d for d in load_baseline(args.baseline)
             if finding_key(d) not in current]

    for f in new:
        print(f.render())
    for d in stale:
        print(f"{d['file']}:{d['line']}: [{d['rule']}] baseline entry no "
              "longer reproduces — regenerate the baseline "
              "(--write-baseline)")
    if new or stale:
        print(f"tmcheck[{frontend}]: {len(new)} new, {len(stale)} stale "
              f"finding(s) vs {args.baseline.name}", file=sys.stderr)
        return 1
    print(f"tmcheck[{frontend}]: clean "
          f"({len(prog.files)} file(s), baseline {len(baseline)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
