#!/usr/bin/env python3
"""Selftest for tools/tmcheck: exact-findings corpus + clean real tree.

Two halves, mirroring tools/lint_tm_selftest.py:

  1. Corpus: run the analyzer over tools/tmcheck/selftest/ (a miniature
     source tree with deliberately-bad TUs, >=2 positives and >=1 silent
     negative per rule) and assert the findings match
     tools/tmcheck/selftest/expected.json EXACTLY — rule id, file, line,
     and (for R7) the reported call chain. A missing finding means a rule
     regressed; an extra finding means a rule grew a false positive.

  2. Real tree: run the analyzer over src/ and assert it matches the
     committed zero-findings baseline (tools/tmcheck/baseline.json).

Run directly or via ctest (test name `tmcheck_selftest`, label `lint`).
"""
from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
TMCHECK = HERE / "tmcheck.py"
CORPUS = HERE / "selftest"
EXPECTED = CORPUS / "expected.json"

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def ok(msg: str) -> None:
    print(f"  ok: {msg}")


def run_tmcheck(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TMCHECK), *args],
        capture_output=True, text=True, cwd=str(REPO))


def check_corpus() -> None:
    print("== corpus: exact expected findings ==")
    json_out = HERE / "selftest_findings.tmp.json"
    proc = run_tmcheck(["--root", str(CORPUS), "--no-baseline",
                        "--json-out", str(json_out)])
    if proc.returncode != 1:
        fail(f"corpus run: expected exit 1 (findings present), got "
             f"{proc.returncode}\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        return
    try:
        got = json.loads(json_out.read_text())["findings"]
    finally:
        json_out.unlink(missing_ok=True)
    want = json.loads(EXPECTED.read_text())["findings"]

    def key(f: dict) -> tuple:
        return (f["rule"], f["file"], f["line"])

    got_by_key = {key(f): f for f in got}
    want_by_key = {key(f): f for f in want}
    if len(got_by_key) != len(got) or len(want_by_key) != len(want):
        fail("duplicate (rule,file,line) keys in findings — corpus must be "
             "deterministic")
    for k in sorted(want_by_key.keys() - got_by_key.keys()):
        fail(f"missing expected finding: {k[0]} at {k[1]}:{k[2]} "
             "(rule regressed?)")
    for k in sorted(got_by_key.keys() - want_by_key.keys()):
        fail(f"unexpected finding: {k[0]} at {k[1]}:{k[2]} "
             f"(new false positive?): {got_by_key[k].get('message', '')}")
    for k in sorted(want_by_key.keys() & got_by_key.keys()):
        w, g = want_by_key[k], got_by_key[k]
        if "chain" in w and g.get("chain") != w["chain"]:
            fail(f"call chain mismatch for {k[0]} at {k[1]}:{k[2]}:\n"
                 f"  want: {w['chain']}\n  got:  {g.get('chain')}")
    if not failures:
        ok(f"{len(want)} expected findings, all matched exactly")

    # The acceptance-criteria case: at least one interprocedural R7 finding
    # whose emission site is in a *different file* from the root and >=2
    # calls deep — provably out of reach for the line-based regex lint.
    deep = [f for f in got
            if f["rule"] == "R7" and len(f.get("chain", [])) >= 4
            and f["chain"][0].split("(")[-1].split(":")[0]
            != f["chain"][-1].split("(")[-1].split(":")[0]]
    if deep:
        ok(f"interprocedural R7 acceptance case present ({len(deep)} "
           "cross-file chain(s) >=2 calls deep)")
    else:
        fail("no cross-file R7 finding with a >=2-deep call chain in corpus")


def check_negatives_documented() -> None:
    """Every corpus TU must declare its negative cases in comments so the
    corpus stays honest about what it is testing."""
    print("== corpus: every TU documents a negative case ==")
    missing = []
    for path in sorted((CORPUS / "src").rglob("*.[ch]pp")):
        text = path.read_text()
        if "stubs.hpp" in path.name:
            continue
        if "negative" not in text:
            missing.append(path.relative_to(CORPUS))
    if missing:
        fail(f"corpus TU(s) without a documented negative case: {missing}")
    else:
        ok("all corpus TUs document their negative (silent) cases")


def check_real_tree() -> None:
    print("== real tree: matches zero-findings baseline ==")
    proc = run_tmcheck([])
    if proc.returncode != 0:
        fail(f"real-tree run: expected exit 0 (clean vs baseline), got "
             f"{proc.returncode}\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    else:
        ok(proc.stdout.strip().splitlines()[-1])
    baseline = json.loads((HERE / "baseline.json").read_text())
    if baseline.get("findings"):
        fail("baseline.json is not a zero-findings baseline; fix the tree "
             "(or add a waiver comment) instead of baselining findings")
    else:
        ok("baseline has zero entries")


def main() -> int:
    check_corpus()
    check_negatives_documented()
    check_real_tree()
    if failures:
        print(f"\ntmcheck_selftest: {len(failures)} failure(s)")
        return 1
    print("\ntmcheck_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
