"""tmfoot capacity-dataflow engine: per-span cache-line footprint intervals.

Computes, for every speculative span (attempt-lambda) in the protocol
layer, a conservative interval [lo, hi] of distinct cache lines the span's
transactional accesses can touch — separately for reads and writes —
by interprocedural accumulation over the name-resolved cross-TU call graph
built by tools/tmmodel.

Only `ops.read` / `ops.write` / `ops.subscribe` calls are counted: those
are the only accesses that ever reach the simulator's capacity model
(sim/lineset.hpp), so the static interval and the runtime capacity-abort
telemetry measure the same quantity — which is what makes the
static<->telemetry reconciliation in tools/trace_view.py meaningful.

Interval discipline (conservative on both sides):
  * lo is a *guaranteed* minimum: an access contributes to lo only when it
    executes unconditionally; a counted loop over a distinct-line address
    contributes its full trip count.
  * hi is a *proved* maximum: any unresolved loop bound, or any call that
    hands an ops/ctx handle to a callee the call graph cannot resolve,
    pushes hi to infinity. A `// tmfoot: bound(N)` annotation caps an
    unresolved loop at N trips.
  * Straight-line accesses to the same canonical address are deduplicated
    (same cache line); loop-scaled accesses are not.
"""

from __future__ import annotations

import math
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from lint_tm import RULE_WINDOW  # noqa: E402  (same window as every marker)
from tmmodel.model import (  # noqa: E402
    AMBIGUOUS_CALL_NAMES,
    FOOT_ACCESS_METHODS,
    FileModel,
    FunctionInfo,
    Program,
)

INF = math.inf

# Directories whose attempt-lambdas are speculative spans (the protocol
# layer; mirrors tmcheck's R7 scope).
SPAN_DIRS = ("src/core", "src/stm", "src/sim", "src/tm", "src/sig")

# A span that constructs one of these context types runs as a
# sub-transaction between kSubBoundary sites (partitioned path); everything
# else is a fast-path (single hardware transaction) span.
SUB_CTX_NAMES = frozenset(["SubCtx", "SegCtx"])

# Names that never become footprint call edges: transactional-access
# methods (counted as accesses, or capacity-free like work/xabort), the
# attempt seam itself, and base names too common to resolve soundly.
EDGE_SKIP_NAMES = frozenset(
    list(FOOT_ACCESS_METHODS) + ["work", "xabort", "attempt"]
) | AMBIGUOUS_CALL_NAMES

# std:: container/value methods that only *receive a value computed from*
# ops (e.g. `log.push_back({addr, ops.read(addr)})`) — the handle itself
# never escapes through them, so they are not unresolved footprint edges.
# Checked only after definition lookup fails, so an in-tree method of the
# same name still resolves normally.
STD_VALUE_SINKS = frozenset([
    "push_back", "emplace_back", "pop_back", "reserve", "resize",
    "countr_zero", "popcount", "min", "max",
])

BOUND_RE = re.compile(r"tmfoot:\s*bound\((\d+)\)")


def loop_bound_annotation(fm: FileModel, line: int):
    """`// tmfoot: bound(N)` on the loop line or <= RULE_WINDOW lines above
    (identical window semantics to every other justification marker)."""
    i = line - 1
    window = fm.lines[max(0, i - RULE_WINDOW):i + 1]
    best = None
    for text in window:
        m = BOUND_RE.search(text)
        if m:
            best = int(m.group(1))
    return best


@dataclass
class Interval:
    lo: int = 0
    hi: float = 0  # int or math.inf

    def add(self, other: "Interval") -> None:
        self.lo += other.lo
        self.hi += other.hi

    def json(self) -> dict:
        return {"lo": self.lo,
                "hi": None if self.hi == INF else int(self.hi)}


@dataclass
class Footprint:
    reads: Interval = field(default_factory=Interval)
    writes: Interval = field(default_factory=Interval)
    unresolved: list = field(default_factory=list)  # "name (file:line)"

    def add_scaled(self, other: "Footprint", lo_times: int,
                   hi_times: float) -> None:
        """Accumulate a callee's footprint across `[lo_times, hi_times]`
        invocations. The callee's lo is counted at most once — repeated
        calls may touch the same lines — while hi scales with the
        invocation bound."""
        for mine, theirs in ((self.reads, other.reads),
                             (self.writes, other.writes)):
            mine.lo += theirs.lo if lo_times >= 1 else 0
            mine.hi += theirs.hi * hi_times if theirs.hi else 0
        if hi_times != 0:
            self.unresolved.extend(other.unresolved)


@dataclass
class Span:
    fn: FunctionInfo
    kind: str          # fast | sub
    foot: Footprint


class FootprintEngine:
    def __init__(self, prog: Program):
        self.prog = prog
        self.files = {fm.rel: fm for fm in prog.files}
        self.defs = prog.defs_by_base()
        self._memo: dict[int, Footprint] = {}
        self._busy: set[int] = set()

    # -- loop scaling ------------------------------------------------------

    def _loop_factor(self, fn: FunctionInfo, loops: tuple, varying: bool):
        """[lo, hi, inf_line] execution-count factor for a statement nested
        under the given loop stack; `inf_line` is the first loop whose trip
        count is neither resolvable nor annotated (the provenance of an
        infinite hi). `varying` says the accessed address changes per
        iteration (distinct lines); an invariant address in a counted loop
        is still one line."""
        lo, hi, inf_line = 1, 1.0, None
        fm = self.files[fn.rel]
        for idx in loops:
            loop = fn.loops[idx]
            if loop.trips is not None:
                t = loop.trips if varying else min(loop.trips, 1)
                lo *= t
                hi *= t
            else:
                bound = loop_bound_annotation(fm, loop.line)
                lo = 0
                if bound is not None:
                    hi *= bound
                else:
                    hi *= INF
                    if inf_line is None:
                        inf_line = loop.line
        return lo, hi, inf_line

    @staticmethod
    def _addr_varying(addr: str, fn: FunctionInfo, loops: tuple) -> bool:
        if "[]" in addr or "->" in addr:
            return True
        idents = set(re.findall(r"[A-Za-z_]\w*", addr))
        return any(fn.loops[i].var and fn.loops[i].var in idents
                   for i in loops)

    # -- per-function footprint -------------------------------------------

    def footprint_of(self, fn: FunctionInfo) -> Footprint:
        if id(fn) in self._memo:
            return self._memo[id(fn)]
        if id(fn) in self._busy:
            # Recursion: no sound finite bound for the cycle's accesses.
            f = Footprint()
            f.unresolved.append(f"recursive call via {fn.qname}")
            f.reads.hi = f.writes.hi = INF
            return f
        self._busy.add(id(fn))
        foot = Footprint()

        seen_scalar = set()
        for acc in fn.foot_accesses:
            varying = self._addr_varying(acc.addr, fn, acc.loops)
            lo_f, hi_f, inf_line = self._loop_factor(fn, acc.loops, varying)
            if inf_line is not None:
                foot.unresolved.append(
                    f"unbounded loop ({fn.rel}:{inf_line})")
            if not acc.loops:
                key = (acc.kind, acc.addr)
                if key in seen_scalar:
                    continue  # same canonical line, already counted
                seen_scalar.add(key)
            iv = foot.reads if acc.kind == "read" else foot.writes
            iv.lo += 0 if acc.conditional else lo_f
            iv.hi += hi_f

        for call in fn.foot_calls:
            if call.name in EDGE_SKIP_NAMES:
                continue
            callees = self.defs.get(call.name)
            lo_f, hi_f, inf_line = self._loop_factor(fn, call.loops,
                                                     varying=True)
            if call.conditional:
                lo_f = 0
            if callees:
                merged = Footprint()
                for i, callee in enumerate(callees):
                    sub = self.footprint_of(callee)
                    if i == 0:
                        merged.reads = Interval(sub.reads.lo, sub.reads.hi)
                        merged.writes = Interval(sub.writes.lo, sub.writes.hi)
                    else:
                        merged.reads.lo = min(merged.reads.lo, sub.reads.lo)
                        merged.reads.hi = max(merged.reads.hi, sub.reads.hi)
                        merged.writes.lo = min(merged.writes.lo, sub.writes.lo)
                        merged.writes.hi = max(merged.writes.hi, sub.writes.hi)
                    merged.unresolved.extend(sub.unresolved)
                if inf_line is not None and (merged.reads.hi
                                             or merged.writes.hi):
                    foot.unresolved.append(
                        f"unbounded loop ({fn.rel}:{inf_line})")
                foot.add_scaled(merged, lo_f, hi_f)
            elif call.passes_ctx and call.name not in STD_VALUE_SINKS:
                # The callee receives a transactional handle but is not in
                # the call graph (function pointer, template, out-of-tree):
                # its footprint is unbounded from here.
                foot.reads.hi = foot.writes.hi = INF
                foot.unresolved.append(
                    f"{call.name} ({fn.rel}:{call.line})")

        self._busy.discard(id(fn))
        self._memo[id(fn)] = foot
        return foot

    # -- spans -------------------------------------------------------------

    def spans(self) -> list[Span]:
        out = []
        for fn in self.prog.functions():
            if not fn.is_attempt_lambda:
                continue
            if not fn.rel.startswith(SPAN_DIRS):
                continue
            kind = "sub" if any(c.name in SUB_CTX_NAMES for c in fn.calls) \
                else "fast"
            out.append(Span(fn=fn, kind=kind, foot=self.footprint_of(fn)))
        out.sort(key=lambda s: (s.fn.rel, s.fn.line))
        return out

    # -- R13 reachability --------------------------------------------------

    def reachable_from_roots(self) -> list[FunctionInfo]:
        """Every function reachable (through resolvable footprint call
        edges) from a speculative root in the protocol layer — the scope
        inside which an unbounded accessing loop needs a bound annotation."""
        roots = [fn for fn in self.prog.functions()
                 if fn.rel.startswith(SPAN_DIRS) and fn.root_reason()]
        seen: dict[int, FunctionInfo] = {}
        queue = list(roots)
        for fn in roots:
            seen[id(fn)] = fn
        while queue:
            fn = queue.pop(0)
            for call in fn.foot_calls:
                if call.name in EDGE_SKIP_NAMES:
                    continue
                for callee in self.defs.get(call.name, ()):
                    if id(callee) not in seen:
                        seen[id(callee)] = callee
                        queue.append(callee)
        return list(seen.values())
