// tmfoot corpus: R11 — fast-path spans whose guaranteed (lower-bound)
// write footprint exceeds the hardware write budget.
#include "util/stubs.hpp"

namespace tmfoot_selftest {

namespace {
std::uint64_t grid[1024];
}

// Positive: 600 guaranteed distinct written lines > write_lines_cap (512)
// on every profile — this span can never commit in HTM.
void oversized_fast(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    for (unsigned i = 0; i < 600; ++i) ops.write(&grid[i], i);
  });
}

// Negative (silent): 100 guaranteed lines fit every profile.
void small_fast(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    for (unsigned i = 0; i < 100; ++i) ops.write(&grid[i], i);
  });
}

// Negative (silent): same oversized shape, deliberately waived.
void waived_fast(Rt& rt) {
  // tmfoot: partitioned — corpus stand-in for a span the partitioned
  // path already covers.
  rt.attempt([&](HtmOps& ops) {
    for (unsigned i = 0; i < 600; ++i) ops.write(&grid[i], i);
  });
}

}  // namespace tmfoot_selftest
