// tmfoot corpus: R12 — sub-transaction spans (they construct SubCtx)
// whose guaranteed footprint exceeds the per-site hardware capacity.
#include "util/stubs.hpp"

namespace tmfoot_selftest {

namespace {
std::uint64_t grid[1024];
std::uint64_t grid2[1024];
}

// Positive: one 600-line loop per sub-HTM site.
void oversized_sub(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    SubCtx ctx(ops);
    (void)ctx;
    for (unsigned i = 0; i < 600; ++i) ops.write(&grid[i], i);
  });
}

// Positive: two sequential loops summing past the budget (300 + 300).
void oversized_sub_pair(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    SubCtx ctx(ops);
    (void)ctx;
    for (unsigned i = 0; i < 300; ++i) ops.write(&grid[i], i);
    for (unsigned j = 0; j < 300; ++j) ops.write(&grid2[j], j);
  });
}

// Negative (silent): 64 lines fit comfortably.
void small_sub(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    SubCtx ctx(ops);
    (void)ctx;
    for (unsigned i = 0; i < 64; ++i) ops.write(&grid[i], i);
  });
}

// Negative (silent): oversized but deliberately waived.
void waived_sub(Rt& rt) {
  // tmfoot: split — corpus stand-in for a site the next boundary
  // placement pass will divide.
  rt.attempt([&](HtmOps& ops) {
    SubCtx ctx(ops);
    (void)ctx;
    for (unsigned i = 0; i < 600; ++i) ops.write(&grid[i], i);
  });
}

}  // namespace tmfoot_selftest
