// tmfoot corpus: cross-file interprocedural R11 — the span itself has no
// loops; its guaranteed 700-line write footprint comes entirely from
// fill_block() in src/sim/fill_block.hpp, whose trip count is a named
// constant from src/util/consts.hpp.
#include "sim/fill_block.hpp"

namespace tmfoot_selftest {

// Positive: interprocedural lower bound 700 > write_lines_cap 512.
void xfile_root(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    fill_block(ops);
  });
}

// Negative (silent): the same helper behind a condition contributes
// nothing to the guaranteed lower bound.
void xfile_maybe(Rt& rt, bool go) {
  rt.attempt([&](HtmOps& ops) {
    if (go) fill_block(ops);
  });
}

}  // namespace tmfoot_selftest
