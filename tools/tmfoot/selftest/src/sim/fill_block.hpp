// Helper for the cross-file interprocedural R11 case: takes the HtmOps
// handle and writes kBigLines (src/util/consts.hpp) distinct lines. Not a
// span itself, and its loop is constant-bounded, so this file is silent
// (negative) — the finding surfaces at the calling span in
// src/core/xfile_root.cpp.
#pragma once

#include "util/consts.hpp"
#include "util/stubs.hpp"

namespace tmfoot_selftest {

inline std::uint64_t block[1024];

inline void fill_block(HtmOps& ops) {
  for (unsigned i = 0; i < kBigLines; ++i) ops.write(&block[i], i);
}

}  // namespace tmfoot_selftest
