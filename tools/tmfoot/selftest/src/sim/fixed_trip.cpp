// tmfoot corpus: exact interval case — a constant-bounded loop over
// distinct lines must produce writes lo == hi == kTrips in the footprint
// JSON (asserted by tmfoot_selftest.py), proving symbolic loop-bound
// resolution end to end. Silent for every rule (negative).
#include "util/stubs.hpp"

namespace tmfoot_selftest {

namespace {
std::uint64_t buf[64];
constexpr unsigned kTrips = 37;
}

void fixed(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    for (unsigned i = 0; i < kTrips; ++i) ops.write(&buf[i], i);
  });
}

}  // namespace tmfoot_selftest
