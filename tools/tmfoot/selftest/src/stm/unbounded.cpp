// tmfoot corpus: R13 — loops with unresolvable trip counts performing
// transactional accesses inside the speculative call graph.
#include "util/stubs.hpp"

namespace tmfoot_selftest {

namespace {
std::uint64_t slots[64];
constexpr unsigned kSmall = 16;
}

// Positive: pointer-chase while-loop inside a span — no static trip count.
void drain(Rt& rt, std::uint64_t* head) {
  rt.attempt([&](HtmOps& ops) {
    std::uint64_t h = ops.read(head);
    while (h != 0) {
      ops.write(&slots[h & 63], h);
      h = ops.read(&slots[(h >> 6) & 63]);
    }
  });
}

// Positive: range-for over a runtime-sized log in an HtmOps&-taking
// helper (a speculative root by signature, reached without any span).
void replay_log(HtmOps& ops, const std::vector<Cell>& log) {
  for (const auto& c : log)
    ops.write(c.addr, c.val);
}

// Negative (silent): the trip count resolves through a named constant.
void bounded(Rt& rt) {
  rt.attempt([&](HtmOps& ops) {
    for (unsigned i = 0; i < kSmall; ++i) ops.write(&slots[i], i);
  });
}

// Negative (silent): unresolvable trip count, but carries a justified cap.
void annotated(HtmOps& ops, const std::vector<Cell>& log) {
  // tmfoot: bound(8) — corpus log never exceeds 8 cells.
  for (const auto& c : log)
    ops.write(c.addr, c.val);
}

}  // namespace tmfoot_selftest
