// Shared constant for the cross-file interprocedural R11 case: the trip
// count lives in this header, the accessing loop in src/sim/fill_block.hpp,
// and the speculative span in src/core/xfile_root.cpp — resolving the
// footprint takes the program-wide constant table plus the cross-TU call
// graph. (Negative space: nothing in this header is a finding.)
#pragma once

namespace tmfoot_selftest {

constexpr unsigned kBigLines = 700;

}  // namespace tmfoot_selftest
