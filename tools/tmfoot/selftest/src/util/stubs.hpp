// Local stubs so the tmfoot selftest corpus compiles as a normal object
// library with the repo's flags while staying independent of the real
// runtime. The shapes are what the footprint engine keys on: an
// `rt.attempt(...)` lambda taking `HtmOps&` is a speculative span, a span
// that constructs a `SubCtx` is a sub-transaction site, and only
// `ops.read/write/subscribe` count as transactional accesses.
#pragma once

#include <cstdint>
#include <vector>

namespace tmfoot_selftest {

struct HtmOps {
  std::uint64_t read(const std::uint64_t* addr) { return *addr; }
  void write(std::uint64_t* addr, std::uint64_t v) { *addr = v; }
  void subscribe(const std::uint64_t* addr) { (void)addr; }
  void work(std::uint64_t n) { (void)n; }
};

// Stand-in for HtmRuntime: anything with an attempt(lambda) seam.
struct Rt {
  template <class F>
  void attempt(F&& body) {
    HtmOps ops;
    body(ops);
  }
};

// Constructing one of these inside a span marks it as a sub-transaction
// site (same detection as the real SubCtx/SegCtx).
struct SubCtx {
  explicit SubCtx(HtmOps& ops) : ops_(ops) {}
  HtmOps& ops_;
};

// A redo-log cell for the unbounded-replay cases.
struct Cell {
  std::uint64_t* addr;
  std::uint64_t val;
};

}  // namespace tmfoot_selftest
