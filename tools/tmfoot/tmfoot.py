#!/usr/bin/env python3
"""tmfoot: static transaction-footprint analyzer for PART-HTM.

Layers a capacity-dataflow pass (footprint.py) on the shared tools/tmmodel
program model and checks every speculative span's conservative cache-line
footprint interval against the machine profiles the simulator is built
with (sim/config.hpp, exported as profiles.json by the phtm_profiles
target — parameters come from the build, not from regex over headers).

Rules
-----
  R11  fast-path span whose *lower-bound* write footprint already exceeds
       a profile's write budget (assoc_sets x assoc_ways) or whose
       guaranteed per-set way pressure exceeds assoc_ways: the hardware
       transaction can never commit on that machine — the span must be
       partitioned. Waiver: `// tmfoot: partitioned`.
  R12  sub-transaction span (constructs SubCtx/SegCtx) whose lower-bound
       footprint exceeds the per-site capacity the partitioned path
       assumes: sub-HTM sites will capacity-abort deterministically and
       burn their retry budget. Waiver: `// tmfoot: split`.
  R13  a loop with an unresolvable trip count that performs transactional
       accesses, reachable from a speculative root: it makes every
       enclosing span's footprint bound infinite. Annotate with
       `// tmfoot: bound(N)` (a justified trip-count cap) to resolve.

Exit status mirrors tmcheck: 0 clean (findings match the committed
baseline exactly), 1 new or stale findings, 2 usage/environment error —
including a committed profiles.json that has drifted from the
build-generated one.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from lint_tm import has_marker  # noqa: E402
from tmmodel.model import load_program  # noqa: E402
from footprint import (  # noqa: E402
    FootprintEngine, Span, loop_bound_annotation)

HERE = Path(__file__).resolve().parent
DEFAULT_ROOT = HERE.parent.parent
DEFAULT_BASELINE = HERE / "baseline.json"
COMMITTED_PROFILES = HERE / "profiles.json"

PROFILE_KEYS = ("write_lines_cap", "assoc_sets", "assoc_ways",
                "read_lines_cap")

R11_WAIVER = "tmfoot: partitioned"
R12_WAIVER = "tmfoot: split"


@dataclass
class Finding:
    rule: str
    rel: str
    line: int
    message: str
    chain: list = field(default_factory=list)

    def key(self):
        return (self.rule, self.rel, self.line)

    def to_json(self):
        d = {"rule": self.rule, "file": self.rel, "line": self.line,
             "message": self.message}
        if self.chain:
            d["chain"] = self.chain
        return d

    def render(self) -> str:
        s = f"{self.rel}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            s += "\n    call chain: " + " -> ".join(self.chain)
        return s


def load_profiles(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or doc.get("schema") != 1 \
            or not isinstance(doc.get("profiles"), dict):
        raise SystemExit(f"tmfoot: malformed profiles file {path}")
    for name, p in doc["profiles"].items():
        for k in PROFILE_KEYS:
            if not isinstance(p.get(k), int):
                raise SystemExit(
                    f"tmfoot: profile {name!r} in {path} missing "
                    f"integer field {k!r}")
    return doc["profiles"]


def over_capacity(profiles: dict, reads_lo: int, writes_lo: int) -> list:
    """Profiles on which a span with these guaranteed-minimum footprints
    can never commit in hardware, with the exceeded limit spelled out."""
    out = []
    for name, p in sorted(profiles.items()):
        if writes_lo > p["write_lines_cap"]:
            out.append(f"{name}: >= {writes_lo} written lines > "
                       f"write_lines_cap {p['write_lines_cap']}")
        elif math.ceil(writes_lo / p["assoc_sets"]) > p["assoc_ways"]:
            out.append(f"{name}: write-set way pressure "
                       f"ceil({writes_lo}/{p['assoc_sets']}) > "
                       f"assoc_ways {p['assoc_ways']}")
        elif reads_lo > p["read_lines_cap"]:
            out.append(f"{name}: >= {reads_lo} read lines > "
                       f"read_lines_cap {p['read_lines_cap']}")
    return out


def fits(profiles: dict, span: Span) -> dict:
    """Per-profile 'statically proved to fit' verdicts from the *upper*
    bounds — the side the telemetry reconciliation consumes. An infinite
    hi can prove nothing, so it reports false."""
    out = {}
    r_hi, w_hi = span.foot.reads.hi, span.foot.writes.hi
    for name, p in sorted(profiles.items()):
        w_ok = (w_hi != math.inf and w_hi <= p["write_lines_cap"]
                and math.ceil(w_hi / p["assoc_sets"]) <= p["assoc_ways"])
        r_ok = r_hi != math.inf and r_hi <= p["read_lines_cap"]
        out[name] = {"writes": bool(w_ok), "reads": bool(r_ok)}
    return out


def run_rules(engine: FootprintEngine, profiles: dict,
              spans: list) -> list:
    findings: list[Finding] = []

    for span in spans:
        fm = engine.files[span.fn.rel]
        foot = span.foot
        exceeded = over_capacity(profiles, foot.reads.lo, foot.writes.lo)
        if not exceeded:
            continue
        if span.kind == "fast":
            if has_marker(fm.lines, span.fn.line - 1, R11_WAIVER):
                continue
            findings.append(Finding(
                "R11", span.fn.rel, span.fn.line,
                f"fast-path span {span.fn.qname} has guaranteed footprint "
                f">= {foot.writes.lo}w/{foot.reads.lo}r lines and cannot "
                f"commit in HTM ({'; '.join(exceeded)}) — partition it or "
                f"waive with `// {R11_WAIVER}`"))
        else:
            if has_marker(fm.lines, span.fn.line - 1, R12_WAIVER):
                continue
            findings.append(Finding(
                "R12", span.fn.rel, span.fn.line,
                f"sub-transaction span {span.fn.qname} has guaranteed "
                f"footprint >= {foot.writes.lo}w/{foot.reads.lo}r lines "
                f"per sub-HTM site ({'; '.join(exceeded)}) — split the "
                f"work across boundaries or waive with `// {R12_WAIVER}`"))

    seen_r13 = set()
    for fn in engine.reachable_from_roots():
        fm = engine.files[fn.rel]
        for idx, loop in enumerate(fn.loops):
            if loop.trips is not None:
                continue
            if loop_bound_annotation(fm, loop.line) is not None:
                continue
            if not any(idx in acc.loops for acc in fn.foot_accesses):
                continue
            key = (fn.rel, loop.line)
            if key in seen_r13:
                continue
            seen_r13.add(key)
            n_acc = sum(1 for acc in fn.foot_accesses if idx in acc.loops)
            findings.append(Finding(
                "R13", fn.rel, loop.line,
                f"{loop.kind}-loop in {fn.qname} has an unresolvable trip "
                f"count but performs {n_acc} transactional access(es) — "
                f"the enclosing span's footprint bound is infinite; "
                f"annotate a justified cap with `// tmfoot: bound(N)`"))

    findings.sort(key=Finding.key)
    return findings


def footprint_doc(profiles: dict, spans: list, root: Path) -> dict:
    return {
        "schema": 1,
        "root": str(root),
        "profiles": profiles,
        "spans": [
            {"qname": s.fn.qname, "file": s.fn.rel, "line": s.fn.line,
             "kind": s.kind,
             "reads": s.foot.reads.json(),
             "writes": s.foot.writes.json(),
             "unresolved_calls": sorted(set(s.foot.unresolved)),
             "fits": fits(profiles, s)}
            for s in spans],
    }


def load_baseline(path: Path) -> list[dict]:
    if not path.is_file():
        return []
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "findings" not in doc:
        raise SystemExit(f"tmfoot: malformed baseline {path}")
    return doc["findings"]


def finding_key(d: dict):
    return (d["rule"], d["file"], d["line"])


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                    help="tree to analyze: must contain src/ "
                         "(default: this checkout)")
    ap.add_argument("--profiles", type=Path, default=None,
                    help="build-generated profiles.json (from the "
                         "phtm_profiles_json target); cross-checked "
                         "against the committed copy "
                         "tools/tmfoot/profiles.json, which is the "
                         "fallback when omitted")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="committed findings baseline (default: "
                         "tools/tmfoot/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report raw findings; nonzero exit if any")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite --baseline from current findings")
    ap.add_argument("--json-out", type=Path, default=None,
                    help="write findings as JSON")
    ap.add_argument("--footprint-out", type=Path, default=None,
                    help="write the per-span footprint intervals and "
                         "per-profile fit verdicts as JSON (input to "
                         "trace_view.py --footprint reconciliation)")
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"tmfoot: no src/ under {root}", file=sys.stderr)
        return 2

    committed = load_profiles(COMMITTED_PROFILES)
    profiles = committed
    if args.profiles is not None:
        if not args.profiles.is_file():
            print(f"tmfoot: profiles file {args.profiles} not found "
                  "(build the phtm_profiles_json target first)",
                  file=sys.stderr)
            return 2
        profiles = load_profiles(args.profiles)
        if profiles != committed:
            print(f"tmfoot: build-generated profiles {args.profiles} "
                  f"disagree with committed {COMMITTED_PROFILES} — "
                  "sim/config.hpp changed; refresh the committed copy "
                  "(see EXPERIMENTS.md)", file=sys.stderr)
            return 2

    prog = load_program(root)
    engine = FootprintEngine(prog)
    spans = engine.spans()
    findings = run_rules(engine, profiles, spans)
    found_json = [f.to_json() for f in findings]

    if args.footprint_out:
        args.footprint_out.parent.mkdir(parents=True, exist_ok=True)
        args.footprint_out.write_text(json.dumps(
            footprint_doc(profiles, spans, root), indent=1) + "\n")
    if args.json_out:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(
            {"schema": 1, "root": str(root), "findings": found_json},
            indent=1) + "\n")

    if args.write_baseline:
        args.baseline.write_text(json.dumps(
            {"schema": 1,
             "comment": "tmfoot zero-findings baseline; regenerate with "
                        "tools/tmfoot/tmfoot.py --write-baseline "
                        "(see EXPERIMENTS.md)",
             "findings": found_json}, indent=1) + "\n")
        print(f"tmfoot: wrote {len(found_json)} finding(s) to "
              f"{args.baseline}")
        return 0

    if args.no_baseline:
        for f in findings:
            print(f.render())
        status = 1 if findings else 0
        print(f"tmfoot: {len(findings)} finding(s) over "
              f"{len(spans)} span(s)"
              + ("" if findings else " — clean"),
              file=sys.stderr if findings else sys.stdout)
        return status

    baseline = {finding_key(d) for d in load_baseline(args.baseline)}
    new = [f for f in findings if f.key() not in baseline]
    current = {f.key() for f in findings}
    stale = [d for d in load_baseline(args.baseline)
             if finding_key(d) not in current]

    for f in new:
        print(f.render())
    for d in stale:
        print(f"{d['file']}:{d['line']}: [{d['rule']}] baseline entry no "
              "longer reproduces — regenerate the baseline "
              "(--write-baseline)")
    if new or stale:
        print(f"tmfoot: {len(new)} new, {len(stale)} stale finding(s) vs "
              f"{args.baseline.name}", file=sys.stderr)
        return 1
    print(f"tmfoot: clean ({len(spans)} span(s), "
          f"{len(profiles)} profile(s), baseline {len(baseline)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
