#!/usr/bin/env python3
"""Selftest for tools/tmfoot: exact-findings corpus + clean real tree.

Mirrors tools/tmcheck/tmcheck_selftest.py:

  1. Corpus: run the analyzer over tools/tmfoot/selftest/ (a miniature
     source tree with deliberately-oversized and unbounded spans, >=2
     positives and >=1 silent negative per rule) and assert the findings
     match tools/tmfoot/selftest/expected.json EXACTLY. A missing finding
     means a rule regressed; an extra finding means a false positive.

  2. Interval unit cases from the corpus footprint JSON:
       - fixed-trip: a kTrips=37 constant-bounded loop over distinct lines
         must yield writes lo == hi == 37 (symbolic loop-bound resolution);
       - cross-file: the xfile_root span's guaranteed 700-line footprint is
         assembled from a helper in another file whose trip count is a
         named constant from a third file (interprocedural accumulation).

  3. Real tree: tmfoot over src/ must match the committed zero-findings
     baseline (tools/tmfoot/baseline.json).

Run directly or via ctest (test name `tmfoot_selftest`, label `lint`).
"""
from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
TMFOOT = HERE / "tmfoot.py"
CORPUS = HERE / "selftest"
EXPECTED = CORPUS / "expected.json"

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def ok(msg: str) -> None:
    print(f"  ok: {msg}")


def run_tmfoot(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TMFOOT), *args],
        capture_output=True, text=True, cwd=str(REPO))


def check_corpus() -> dict:
    print("== corpus: exact expected findings ==")
    json_out = HERE / "selftest_findings.tmp.json"
    foot_out = HERE / "selftest_footprint.tmp.json"
    proc = run_tmfoot(["--root", str(CORPUS), "--no-baseline",
                       "--json-out", str(json_out),
                       "--footprint-out", str(foot_out)])
    if proc.returncode != 1:
        fail(f"corpus run: expected exit 1 (findings present), got "
             f"{proc.returncode}\nstdout:\n{proc.stdout}\n"
             f"stderr:\n{proc.stderr}")
        return {}
    try:
        got = json.loads(json_out.read_text())["findings"]
        foot = json.loads(foot_out.read_text())
    finally:
        json_out.unlink(missing_ok=True)
        foot_out.unlink(missing_ok=True)
    want = json.loads(EXPECTED.read_text())["findings"]

    def key(f: dict) -> tuple:
        return (f["rule"], f["file"], f["line"])

    got_by_key = {key(f): f for f in got}
    want_by_key = {key(f): f for f in want}
    if len(got_by_key) != len(got) or len(want_by_key) != len(want):
        fail("duplicate (rule,file,line) keys in findings — corpus must be "
             "deterministic")
    for k in sorted(want_by_key.keys() - got_by_key.keys()):
        fail(f"missing expected finding: {k[0]} at {k[1]}:{k[2]} "
             "(rule regressed?)")
    for k in sorted(got_by_key.keys() - want_by_key.keys()):
        fail(f"unexpected finding: {k[0]} at {k[1]}:{k[2]} "
             f"(new false positive?): {got_by_key[k].get('message', '')}")
    if not failures:
        ok(f"{len(want)} expected findings, all matched exactly")
    for rule in ("R11", "R12", "R13"):
        n = sum(1 for f in want if f["rule"] == rule)
        if n < 2:
            fail(f"corpus must keep >=2 positives for {rule}, has {n}")
    return foot


def span_of(foot: dict, rel: str) -> dict | None:
    spans = [s for s in foot.get("spans", []) if s["file"] == rel]
    return spans[0] if len(spans) == 1 else None


def check_intervals(foot: dict) -> None:
    print("== corpus: footprint interval unit cases ==")
    if not foot:
        fail("no corpus footprint JSON to check intervals against")
        return
    fixed = span_of(foot, "src/sim/fixed_trip.cpp")
    if fixed is None:
        fail("expected exactly one span in src/sim/fixed_trip.cpp")
    elif fixed["writes"] != {"lo": 37, "hi": 37}:
        fail(f"fixed-trip span: want writes lo==hi==37, got "
             f"{fixed['writes']} (symbolic loop-bound resolution broken?)")
    else:
        ok("fixed-trip loop resolves to writes lo == hi == 37")
    xfile_spans = [s for s in foot["spans"]
                   if s["file"] == "src/core/xfile_root.cpp"]
    root = next((s for s in xfile_spans if s["writes"]["lo"] == 700), None)
    if root is None:
        fail(f"cross-file span: want a src/core/xfile_root.cpp span with "
             f"writes lo == 700 via sim/fill_block.hpp + util/consts.hpp, "
             f"got {[s['writes'] for s in xfile_spans]}")
    else:
        ok("cross-file interprocedural footprint (700 lines through a "
           "helper in another TU, constant from a third file)")


def check_negatives_documented() -> None:
    """Every corpus TU must declare its negative cases in comments so the
    corpus stays honest about what it is testing."""
    print("== corpus: every TU documents a negative case ==")
    missing = []
    for path in sorted((CORPUS / "src").rglob("*.[ch]pp")):
        text = path.read_text()
        if "stubs.hpp" in path.name:
            continue
        if "negative" not in text.lower():
            missing.append(path.relative_to(CORPUS))
    if missing:
        fail(f"corpus TU(s) without a documented negative case: {missing}")
    else:
        ok("all corpus TUs document their negative (silent) cases")


def check_real_tree() -> None:
    print("== real tree: matches zero-findings baseline ==")
    proc = run_tmfoot([])
    if proc.returncode != 0:
        fail(f"real-tree run: expected exit 0 (clean vs baseline), got "
             f"{proc.returncode}\nstdout:\n{proc.stdout}\n"
             f"stderr:\n{proc.stderr}")
    else:
        ok(proc.stdout.strip().splitlines()[-1])
    baseline = json.loads((HERE / "baseline.json").read_text())
    if baseline.get("findings"):
        fail("baseline.json is not a zero-findings baseline; annotate the "
             "tree (tmfoot: bound/partitioned/split) instead of baselining")
    else:
        ok("baseline has zero entries")


def main() -> int:
    foot = check_corpus()
    check_intervals(foot)
    check_negatives_documented()
    check_real_tree()
    if failures:
        print(f"\ntmfoot_selftest: {len(failures)} failure(s)")
        return 1
    print("\ntmfoot_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
