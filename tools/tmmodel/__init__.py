"""Shared C++ program-model frontend for the static-analysis tools.

One frontend, two consumers: tools/tmcheck (protocol rules R1-R9) and
tools/tmfoot (capacity-dataflow rules R11-R13) both build their analyses on
this package, so neither forks the lexer, the structural parser, or the
constant-merging machinery.

Modules:
  cpplex         token stream + comment side channel + brace matching
  model          scope walker -> Program/FileModel/FunctionInfo (the token
                 frontend), including loop/footprint extraction
  frontend_clang optional clang.cindex frontend (same model, real AST)
"""
