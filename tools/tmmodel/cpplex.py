"""C++ token stream for tmcheck's structural frontend.

Not a conforming lexer — a faithful-enough tokenizer for whole-program
*protocol* analysis: it gets comments, string/char literals (including raw
strings), preprocessor logical lines, and multi-character operators right,
so the structural parser (model.py) can do brace matching and statement
recognition on clean token text instead of regexes over raw lines.

Comments are not discarded: they are routed to a per-line side channel so
the rule engine can check justification markers (`relaxed:`, `span-waiver:`,
...) with exactly the same window semantics the regex lint uses.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PREPROC = "preproc"  # one token per logical (continuation-joined) directive

KEYWORDS = frozenset("""
    alignas alignof asm auto bool break case catch char char8_t char16_t
    char32_t class concept const consteval constexpr constinit const_cast
    continue co_await co_return co_yield decltype default delete do double
    dynamic_cast else enum explicit export extern false float for friend goto
    if inline int long mutable namespace new noexcept nullptr operator private
    protected public register reinterpret_cast requires return short signed
    sizeof static static_assert static_cast struct switch template this
    thread_local throw true try typedef typeid typename union unsigned using
    virtual void volatile wchar_t while final override
""".split())

# Multi-char punctuators, longest first.
_PUNCTS = sorted(
    ["<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
     ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
     "^=", "##", "<=>"],
    key=len, reverse=True)


@dataclass
class Token:
    kind: str
    text: str
    line: int  # 1-based

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.text!r}@{self.line}"


def lex(text: str):
    """Returns (tokens, comment_lines) where comment_lines maps a 1-based
    line number to the concatenated comment text appearing on that line
    (block comments contribute to every line they span)."""
    toks: list[Token] = []
    comments: dict[int, str] = {}
    i, n, line = 0, len(text), 1

    def add_comment(ln: int, s: str) -> None:
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            add_comment(line, text[i:j])
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i:j + 2]
            for off, part in enumerate(body.split("\n")):
                add_comment(line + off, part)
            line += body.count("\n")
            i = j + 2
            continue
        # Preprocessor directive: one token per logical line.
        if c == "#" and (not toks or toks[-1].line != line):
            start, start_line = i, line
            while i < n:
                j = text.find("\n", i)
                j = n if j < 0 else j
                seg = text[i:j]
                if seg.rstrip().endswith("\\"):
                    line += 1
                    i = j + 1
                else:
                    i = j
                    break
            toks.append(Token(PREPROC, text[start:i], start_line))
            continue
        # Raw strings: R"delim( ... )delim"
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = text.find("(", i + 2)
            if m > 0:
                delim = text[i + 2:m]
                endmark = ")" + delim + '"'
                e = text.find(endmark, m + 1)
                e = n if e < 0 else e + len(endmark)
                tok = text[i:e]
                toks.append(Token(STRING, tok, line))
                line += tok.count("\n")
                i = e
                continue
        # Strings / chars (with optional prefixes shorter than raw-string R).
        if c in "\"'":
            quote, j = c, i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            toks.append(Token(STRING if quote == '"' else CHAR,
                              text[i:j + 1], line))
            i = j + 1
            continue
        # Identifiers / keywords.
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            # Literal prefixes glued to a string (u8"...", L"...").
            if j < n and text[j] == '"' and word in ("u8", "u", "U", "L"):
                i = j
                continue
            toks.append(Token(IDENT, word, line))
            i = j
            continue
        # Numbers (incl. hex, separators, suffixes; pp-number-ish).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Token(NUMBER, text[i:j], line))
            i = j
            continue
        # Punctuators.
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            toks.append(Token(PUNCT, c, line))
            i += 1
    return toks, comments


def match_braces(toks: list[Token]) -> dict[int, int]:
    """Index of every '{' / '(' / '[' token -> index of its matching closer
    (and vice versa). Unbalanced tokens are left unmapped."""
    pairs: dict[int, int] = {}
    stack: list[tuple[str, int]] = []
    closer = {"{": "}", "(": ")", "[": "]"}
    opener = {v: k for k, v in closer.items()}
    for i, t in enumerate(toks):
        if t.kind != PUNCT:
            continue
        if t.text in closer:
            stack.append((t.text, i))
        elif t.text in opener:
            # Pop until the matching opener kind (tolerates stray closers).
            while stack:
                kind, j = stack.pop()
                if kind == opener[t.text]:
                    pairs[j] = i
                    pairs[i] = j
                    break
    return pairs
