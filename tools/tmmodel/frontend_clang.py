"""Optional clang.cindex frontend for tmcheck.

When the python libclang bindings are importable (and a libclang shared
library can be loaded), this frontend parses the translation units listed
in compile_commands.json and produces the same Program model the token
frontend builds — with the compiler's own name resolution instead of the
structural heuristics.

The container images this repo targets ship only the LLVM *tools* (no
clang driver, no libclang C API, no python bindings), so this module is
strictly opt-in: `tmcheck --frontend clang` fails with a clear message when
the bindings are missing, and `--frontend auto` silently uses the token
frontend. The rule engine (rules.py) is identical either way; the selftest
corpus pins the expected findings so the two frontends can be diffed when
a clang toolchain is available.
"""

from __future__ import annotations

import json
from pathlib import Path

from .model import (
    AtomicOp,
    ATOMIC_METHODS,
    CallSite,
    FileModel,
    FunctionInfo,
    Impurity,
    MemberDecl,
    Program,
)


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


def why_unavailable() -> str:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return ("python clang bindings not importable (no libclang in this "
                "environment); use --frontend tokens")
    return "libclang shared library failed to load; use --frontend tokens"


def load_program_clang(root: Path, compile_commands: Path,
                       subdir: str = "src") -> Program:
    import clang.cindex as ci

    index = ci.Index.create()
    entries = json.loads(compile_commands.read_text())
    prog = Program(root=root)
    models: dict[str, FileModel] = {}

    def model_for(path: Path) -> FileModel | None:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return None
        if not rel.startswith(subdir + "/"):
            return None
        fm = models.get(rel)
        if fm is None:
            text = path.read_text(errors="replace")
            # Reuse the lexer's comment channel so marker windows behave
            # identically across frontends.
            from .cpplex import lex
            _, comments = lex(text)
            fm = FileModel(path=path, rel=rel, lines=text.splitlines(),
                           comments=comments)
            models[rel] = fm
            prog.files.append(fm)
        return fm

    for entry in entries:
        src = Path(entry.get("directory", ".")) / entry["file"]
        args = [a for a in entry.get("command", "").split()[1:]
                if not a.endswith(entry["file"]) and a not in ("-c", "-o")]
        try:
            tu = index.parse(str(src), args=args)
        except Exception:
            continue
        _walk_tu(tu.cursor, root, model_for)

    return prog


def _loc(cursor):
    f = cursor.location.file
    return (Path(f.name) if f else None), cursor.location.line


def _walk_tu(cursor, root: Path, model_for) -> None:
    import clang.cindex as ci
    K = ci.CursorKind

    def visit(c, current_fn):
        path, line = _loc(c)
        fm = model_for(path) if path else None
        if c.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                      K.DESTRUCTOR, K.LAMBDA_EXPR) and c.is_definition():
            if fm is not None:
                owner = c.semantic_parent
                quals = []
                p = owner
                while p is not None and p.kind in (
                        K.CLASS_DECL, K.STRUCT_DECL, K.NAMESPACE):
                    if p.spelling:
                        quals.insert(0, p.spelling)
                    p = p.semantic_parent
                base = c.spelling or f"<lambda@{line}>"
                fn = FunctionInfo(
                    qname="::".join(quals + [base]), base=base, rel=fm.rel,
                    line=line, end_line=c.extent.end.line,
                    takes_htmops=any(
                        "HtmOps &" in a.type.spelling
                        for a in c.get_arguments()),
                    is_htmops_method=(owner is not None
                                      and owner.spelling == "HtmOps"))
                fm.functions.append(fn)
                current_fn = fn
        elif c.kind == K.FIELD_DECL and fm is not None:
            t = c.type.get_canonical().spelling
            fm.members.append(MemberDecl(
                text=f"{c.type.spelling} {c.spelling}", line=line,
                is_atomic="atomic<" in t,
                is_blocking=any(b in t for b in (
                    "std::mutex", "std::shared_mutex",
                    "std::condition_variable")),
                holds_htmops="HtmOps &" in t))
        elif c.kind == K.CALL_EXPR and current_fn is not None:
            name = c.spelling
            if name in ATOMIC_METHODS:
                current_fn.atomics.append(_atomic_from_call(c, name, line))
            elif name:
                current_fn.calls.append(CallSite(name, line, "", ""))
        elif c.kind == K.CXX_NEW_EXPR and current_fn is not None:
            current_fn.impurities.append(
                Impurity("alloc", "new expression", line))
        for child in c.get_children():
            visit(child, current_fn)

    visit(cursor, None)


def _atomic_from_call(c, name: str, line: int) -> AtomicOp:
    kind, order_pos = ATOMIC_METHODS[name]
    order = "seq_cst"
    source = "default"
    args = list(c.get_arguments())
    if len(args) > order_pos:
        spelled = " ".join(t.spelling for t in args[order_pos].get_tokens())
        for o in ("relaxed", "consume", "acquire", "release",
                  "acq_rel", "seq_cst"):
            if o in spelled:
                order, source = o, "explicit"
                break
    toks = list(c.get_tokens())
    addr = "".join(t.spelling for t in toks[:6])
    tail = ""
    for t in reversed(addr.split(".")[0:1] or [""]):
        tail = t
    return AtomicOp(kind=kind, op=name, order=order, fail_order="",
                    order_source=source, addr=addr, tail=tail, line=line)
