"""Program model for tmcheck: files -> functions/classes/calls/atomic ops.

This is the structural ("token") frontend. It parses each file's token
stream (cpplex.py) into a scope tree — namespaces, classes, enums, function
definitions — and extracts, per function:

  * call sites (callee base name + receiver/qualifier hints),
  * atomic operations with their *resolved* memory order (through
    `constexpr` order constants, type aliases, and default arguments),
  * raw `__atomic_*` / `__sync_*` builtin uses,
  * impurities for the speculative-span rules (allocation, I/O, OS
    blocking, trace emission),
  * speculative roots: `.attempt(...)` lambda bodies, `HtmOps::` methods,
    functions taking `HtmOps&`, and methods of classes holding an
    `HtmOps&` member.

plus per file: includes, class member declarations (atomic / blocking /
HtmOps& members, alias-resolved), type aliases and memory-order constants.

The clang.cindex frontend (frontend_clang.py) produces the same model from
a real AST when libclang is available; the rule engine (rules.py) is
frontend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .cpplex import IDENT, NUMBER, PREPROC, PUNCT, Token, lex, match_braces

# --- memory orders --------------------------------------------------------

ORDERS = ("relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst")

_ORDER_LITERALS = {}
for _o in ORDERS:
    _ORDER_LITERALS[f"memory_order_{_o}"] = _o
    _ORDER_LITERALS[_o.upper()] = None  # placeholder; real key added below
    _ORDER_LITERALS[f"__ATOMIC_{_o.upper()}"] = _o
_ORDER_LITERALS = {k: v for k, v in _ORDER_LITERALS.items() if v}

# Atomic member functions -> (kind, index of the memory-order argument).
# For compare_exchange_* the index is the *success* order; a failure order,
# if present, is the next argument.
ATOMIC_METHODS = {
    "load": ("load", 0),
    "store": ("store", 1),
    "exchange": ("rmw", 1),
    "fetch_add": ("rmw", 1),
    "fetch_sub": ("rmw", 1),
    "fetch_and": ("rmw", 1),
    "fetch_or": ("rmw", 1),
    "fetch_xor": ("rmw", 1),
    "compare_exchange_weak": ("cas", 2),
    "compare_exchange_strong": ("cas", 2),
}

# GCC builtin family -> (kind, which argument carries the order).
ATOMIC_BUILTINS = {
    "__atomic_load_n": ("load", -1),
    "__atomic_load": ("load", -1),
    "__atomic_store_n": ("store", -1),
    "__atomic_store": ("store", -1),
    "__atomic_exchange_n": ("rmw", -1),
    "__atomic_fetch_add": ("rmw", -1),
    "__atomic_fetch_sub": ("rmw", -1),
    "__atomic_fetch_and": ("rmw", -1),
    "__atomic_fetch_or": ("rmw", -1),
    "__atomic_fetch_xor": ("rmw", -1),
    "__atomic_add_fetch": ("rmw", -1),
    "__atomic_sub_fetch": ("rmw", -1),
    "__atomic_compare_exchange_n": ("cas", 4),
    "__atomic_compare_exchange": ("cas", 4),
    "__atomic_thread_fence": ("fence", 0),
}

BLOCKING_TYPES = ("mutex", "shared_mutex", "timed_mutex",
                  "recursive_mutex", "condition_variable",
                  "condition_variable_any")

TRACE_EXEMPT = frozenset(
    ["PHTM_TRACE_TXN_ENTER", "PHTM_TRACE_TXN_EXIT", "PHTM_TRACE_META"])

ALLOC_CALLS = frozenset("""
    malloc calloc realloc aligned_alloc posix_memalign strdup
    make_unique make_shared push_back emplace_back emplace resize reserve
    insert assign append
""".split())

IO_CALLS = frozenset("""
    printf fprintf vfprintf puts fputs fputc fwrite fread fopen fclose
    fflush perror getline system
""".split())

IO_STREAMS = frozenset(["cout", "cerr", "clog"])

BLOCK_CALLS = frozenset(["sleep_for", "sleep_until", "usleep", "nanosleep"])
BLOCK_TYPES_USE = frozenset(["unique_lock", "lock_guard", "scoped_lock"])

CONTROL_KEYWORDS = frozenset(
    ["if", "else", "for", "while", "do", "switch", "try", "catch"])

# Call names that never become call-graph edges (assertion/annotation
# machinery, casts, builtins handled elsewhere).
CALL_IGNORE = frozenset("""
    assert static_assert sizeof alignof decltype typeid noexcept
    static_cast dynamic_cast reinterpret_cast const_cast
""".split())

# Call-graph edges are resolved by base name. Names this common would wire
# unrelated code together; a real analyzer resolves overloads — the token
# frontend declines to guess for these. Shared by every model consumer so
# tmcheck's R7 and tmfoot's interprocedural accumulation agree on which
# edges exist.
AMBIGUOUS_CALL_NAMES = frozenset(
    ["get", "set", "size", "empty", "begin", "end", "clear", "reset",
     "value", "count", "data", "find", "next", "at"])


@dataclass
class CallSite:
    name: str          # callee base name
    line: int
    receiver: str      # "" for free calls; canonical receiver text otherwise
    qualifier: str     # explicit "a::b" qualifier text ("" if none)


# --- footprint model (tmfoot) ---------------------------------------------
#
# A second, independent extraction pass records what the capacity-dataflow
# tool needs: the loop structure of each function, the transactional
# accesses (`ops.read/write/subscribe` — the only accesses the simulator's
# capacity model ever sees), and the call sites with enough context to
# decide whether an unresolved callee could touch transactional state.

# HtmOps methods that consume capacity (lines), and what they consume.
# `subscribe` adds a line to the read set (monitoring only); `work` and
# `xabort` consume no lines and are not recorded.
FOOT_ACCESS_METHODS = {"read": "read", "write": "write", "subscribe": "read"}

# Receiver tails that name the simulator's transactional-access handle.
FOOT_OPS_RECEIVERS = frozenset(["ops", "ops_"])


@dataclass
class LoopInfo:
    kind: str            # for | range-for | while | do
    line: int
    var: str             # induction variable ("" if none recognized)
    cmp: str             # loop comparison: < <= > >= != ("" if none)
    init_toks: list      # token texts of the init expression (after '=')
    limit_toks: list     # token texts of the bound expression
    step_toks: list      # token texts of the step ([] means +1 / -1)
    step_sign: int       # +1 up-counting, -1 down-counting
    trips: int | None = None   # resolved trip count (program-wide pass)


@dataclass
class FootAccess:
    kind: str            # read | write (subscribe counts as read)
    op: str              # source-level method name
    addr: str            # canonicalized address expression
    line: int
    loops: tuple         # indices into FunctionInfo.loops, outermost first
    conditional: bool    # under if/else/switch (lower bound may be 0)


@dataclass
class FootCall:
    name: str            # callee base name
    line: int
    receiver: str
    passes_ctx: bool     # an argument/receiver names an ops/ctx handle
    loops: tuple
    conditional: bool


@dataclass
class AtomicOp:
    kind: str          # load | store | rmw | cas | fence | unknown
    op: str            # source-level operation name
    order: str         # resolved order, or "param:<name>" / "unknown"
    fail_order: str    # cas only; "" otherwise
    order_source: str  # explicit | default | constant:<n> | param-default:<n>
    addr: str          # canonicalized address/receiver expression
    tail: str          # trailing identifier of `addr` (pairing key)
    line: int


@dataclass
class Impurity:
    kind: str          # trace | alloc | io | os-block
    what: str
    line: int


@dataclass
class MemberDecl:
    text: str
    line: int
    is_atomic: bool
    is_blocking: bool
    holds_htmops: bool


@dataclass
class FunctionInfo:
    qname: str                 # namespace/class-qualified name
    base: str                  # unqualified name (call-graph key)
    rel: str                   # file path relative to the scan root
    line: int
    end_line: int
    takes_htmops: bool = False
    is_htmops_method: bool = False
    owner_holds_htmops: bool = False
    is_attempt_lambda: bool = False
    calls: list[CallSite] = field(default_factory=list)
    atomics: list[AtomicOp] = field(default_factory=list)
    raw_atomics: list[tuple[str, int]] = field(default_factory=list)
    impurities: list[Impurity] = field(default_factory=list)
    # memory_order parameters with defaults: name -> default order
    order_params: dict = field(default_factory=dict)
    # footprint model (tmfoot): loop structure + transactional accesses
    loops: list = field(default_factory=list)          # LoopInfo
    foot_accesses: list = field(default_factory=list)  # FootAccess
    foot_calls: list = field(default_factory=list)     # FootCall

    def root_reason(self) -> str:
        if self.is_attempt_lambda:
            return "body of an rt.attempt() hardware transaction"
        if self.is_htmops_method:
            return "HtmOps transactional-access method"
        if self.takes_htmops:
            return "takes HtmOps& (runs under the hardware transaction)"
        if self.owner_holds_htmops:
            return "method of a class holding HtmOps& (transactional context)"
        return ""


@dataclass
class FileModel:
    path: Path
    rel: str
    lines: list[str]                  # raw source lines (marker windows)
    comments: dict                    # line -> comment text
    includes: list = field(default_factory=list)   # (header, line)
    functions: list = field(default_factory=list)  # FunctionInfo
    members: list = field(default_factory=list)    # MemberDecl
    aliases: dict = field(default_factory=dict)    # name -> target text
    mo_constants: dict = field(default_factory=dict)  # name -> order
    int_constants: dict = field(default_factory=dict)  # name -> init tokens
    blocking_uses: list = field(default_factory=list)  # (text, line)


@dataclass
class Program:
    root: Path
    files: list = field(default_factory=list)

    def merged_aliases(self) -> dict:
        out = {}
        for f in self.files:
            out.update(f.aliases)
        return out

    def merged_mo_constants(self) -> dict:
        out = {}
        for f in self.files:
            out.update(f.mo_constants)
        return out

    def merged_int_constants(self) -> dict:
        out = {}
        for f in self.files:
            out.update(f.int_constants)
        return out

    def functions(self):
        for f in self.files:
            yield from f.functions

    def defs_by_base(self) -> dict:
        idx: dict[str, list] = {}
        for fn in self.functions():
            idx.setdefault(fn.base, []).append(fn)
        return idx


# --- token helpers --------------------------------------------------------

def _split_args(toks: list[Token], pairs: dict, lo: int, hi: int):
    """Split tokens in (lo, hi) exclusive — the inside of a paren group —
    into top-level comma-separated argument slices."""
    args, start, i = [], lo + 1, lo + 1
    while i < hi:
        t = toks[i]
        if t.kind == PUNCT and t.text in ("(", "[", "{") and i in pairs:
            i = pairs[i] + 1
            continue
        if t.kind == PUNCT and t.text == ",":
            args.append((start, i))
            start = i + 1
        i += 1
    if hi > start:
        args.append((start, hi))
    return [a for a in args if a[1] > a[0]]


def _tok_text(toks: list[Token], lo: int, hi: int) -> str:
    return " ".join(t.text for t in toks[lo:hi])


def _canonical_addr(toks: list[Token], pairs: dict, lo: int, hi: int) -> str:
    """Canonicalize an address expression: drop leading '&', drop 'this->',
    collapse subscripts to '[]'."""
    out, i = [], lo
    while i < hi:
        t = toks[i]
        if t.kind == PUNCT and t.text == "[" and i in pairs:
            out.append("[]")
            i = pairs[i] + 1
            continue
        out.append(t.text)
        i += 1
    s = "".join(out)
    while s.startswith("&") or s.startswith("*"):
        s = s[1:]
    s = s.replace("this->", "").replace("(", "").replace(")", "")
    return s


def _addr_tail(addr: str) -> str:
    ident = ""
    for piece in reversed(addr.replace("->", ".").split(".")):
        piece = piece.strip("[]&*:")
        if piece and (piece[0].isalpha() or piece[0] == "_"):
            ident = piece
            break
    return ident


# --- the parser -----------------------------------------------------------

class _Scope:
    __slots__ = ("kind", "name", "close", "holds_htmops", "fn", "owner",
                 "span")

    def __init__(self, kind, name, close, fn=None):
        self.kind = kind          # namespace | class | enum | function | block
        self.name = name
        self.close = close
        self.holds_htmops = False
        self.fn = fn
        self.owner = None
        self.span = None


def parse_file(path: Path, rel: str) -> FileModel:
    text = path.read_text(errors="replace")
    toks, comments = lex(text)
    pairs = match_braces(toks)
    fm = FileModel(path=path, rel=rel, lines=text.splitlines(),
                   comments=comments)

    _scan_preproc(toks, fm)
    _scan_aliases_and_constants(toks, pairs, fm)
    scopes = _walk_scopes(toks, pairs, fm, rel)
    _scan_class_members(toks, pairs, scopes, fm)
    aliases = fm.aliases  # file-local view; program-wide merge happens later
    for sc in scopes:
        if sc.kind == "function":
            _scan_function_body(toks, pairs, sc, fm, aliases)
    _scan_blocking_uses(toks, fm)
    return fm


def _scan_preproc(toks, fm: FileModel) -> None:
    for t in toks:
        if t.kind != PREPROC:
            continue
        d = t.text.lstrip("# \t")
        if d.startswith("include"):
            rest = d[len("include"):].strip()
            if rest[:1] in ("<", '"'):
                end = ">" if rest[0] == "<" else '"'
                name = rest[1:rest.find(end, 1)] if rest.find(end, 1) > 0 else rest[1:]
                fm.includes.append((name, t.line))


def _scan_aliases_and_constants(toks, pairs, fm: FileModel) -> None:
    """using NAME = ...;  /  typedef ... NAME;  /  constexpr ... NAME = <mo>;"""
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == IDENT and t.text == "using" and i + 2 < n \
                and toks[i + 1].kind == IDENT and toks[i + 2].text == "=":
            j = i + 3
            while j < n and toks[j].text != ";":
                j += 1
            fm.aliases[toks[i + 1].text] = _tok_text(toks, i + 3, j)
            i = j
            continue
        if t.kind == IDENT and t.text == "typedef":
            j = i + 1
            while j < n and toks[j].text != ";":
                j += 1
            if j - 1 > i + 1 and toks[j - 1].kind == IDENT:
                fm.aliases[toks[j - 1].text] = _tok_text(toks, i + 1, j - 1)
            i = j
            continue
        if t.kind == IDENT and t.text == "constexpr":
            # constexpr [type...] NAME = <expr containing an order literal> ;
            j = i + 1
            while j < n and toks[j].text not in ("=", ";", "{", "}"):
                j += 1
            if j < n and toks[j].text == "=" and toks[j - 1].kind == IDENT:
                name = toks[j - 1].text
                k = j + 1
                order = None
                while k < n and toks[k].text != ";":
                    if toks[k].text in _ORDER_LITERALS:
                        order = _ORDER_LITERALS[toks[k].text]
                    elif toks[k].kind == IDENT and toks[k].text in ORDERS \
                            and k > 0 and toks[k - 1].text == "::":
                        order = toks[k].text  # std::memory_order::relaxed
                    k += 1
                if order:
                    fm.mo_constants[name] = order
                else:
                    # Named integer constant: keep the initializer token
                    # texts; resolution (through other constants, program
                    # wide) happens after the merge pass so a constant in
                    # one header can bound a loop in another TU.
                    fm.int_constants[name] = \
                        [toks[x].text for x in range(j + 1, k)]
                i = k
                continue
        i += 1


def _classify_head(toks, pairs, open_idx):
    """Look back from a '{' to the start of its statement and classify what
    the brace opens. Returns (kind, info)."""
    j = open_idx - 1
    head: list[int] = []  # token indices, reversed
    hops = 0
    while j >= 0 and hops < 400:
        t = toks[j]
        hops += 1
        if t.kind == PUNCT and t.text in (")", "]") and j in pairs:
            head.append(j)           # group end marker
            j = pairs[j]
            head.append(j)           # group start marker
            j -= 1
            continue
        if t.kind == PUNCT and t.text in (";", "{"):
            break
        if t.kind == PUNCT and t.text == "}":
            break
        if t.kind == PREPROC:
            j -= 1
            continue
        head.append(j)
        j -= 1
    head.reverse()
    if not head:
        return "block", None
    first = toks[head[0]]

    # Skip a leading `template < ... >` intro.
    pos = 0
    if first.kind == IDENT and first.text == "template":
        depth = 0
        pos += 1
        while pos < len(head):
            tt = toks[head[pos]].text
            if tt == "<":
                depth += 1
            elif tt == ">":
                depth -= 1
                if depth == 0:
                    pos += 1
                    break
            pos += 1
        if pos >= len(head):
            return "block", None
        first = toks[head[pos]]

    if first.kind == IDENT and first.text in CONTROL_KEYWORDS:
        return "block", None
    if first.kind == IDENT and first.text == "namespace":
        name = ""
        for h in head[pos + 1:]:
            if toks[h].kind == IDENT:
                name = toks[h].text
                break
        return "namespace", name
    if first.kind == IDENT and first.text == "extern":
        return "block", None
    if first.kind == IDENT and first.text == "enum":
        return "enum", None
    if first.kind == IDENT and first.text in ("class", "struct", "union"):
        # name = first identifier after the key, skipping alignas(...) and
        # attribute groups.
        k = pos + 1
        name = ""
        while k < len(head):
            h = head[k]
            t = toks[h]
            if t.kind == IDENT and t.text == "alignas":
                k += 3  # alignas ( ... ) appears as ident + 2 group markers
                continue
            if t.kind == PUNCT and t.text in ("(", ")", "[", "]"):
                k += 1
                continue
            if t.kind == IDENT and t.text not in ("final",):
                # Qualified out-of-class-line definitions:
                # `class Outer::Inner final : ... {`
                name = t.text
                while k + 2 < len(head) \
                        and toks[head[k + 1]].text == "::" \
                        and toks[head[k + 2]].kind == IDENT:
                    name += "::" + toks[head[k + 2]].text
                    k += 2
                break
            if t.kind == PUNCT and t.text == ":":
                break
            k += 1
        return "class", name
    prev = toks[head[-1]]
    if prev.kind == PUNCT and prev.text in ("=", ",", "(", "["):
        return "block", None
    if prev.kind == IDENT and prev.text == "return":
        return "block", None

    # Function definition: find the parameter-list group.
    k = pos
    group_at = None
    while k < len(head) - 1:
        h = head[k]
        if toks[h].kind == PUNCT and toks[h].text == "(" and h in pairs:
            before = toks[head[k - 1]] if k > 0 else None
            if before is not None and before.kind == IDENT and before.text in (
                    "decltype", "alignas", "noexcept", "__attribute__",
                    "sizeof", "requires"):
                # qualifier group; skip past its end marker
                k += 2
                continue
            group_at = k
            break
        k += 1
    if group_at is None or group_at == 0:
        return "block", None
    name_tok = toks[head[group_at - 1]]
    if name_tok.kind == PUNCT and name_tok.text == "]":
        return "block", None  # lambda body: attributed to enclosing function
    if name_tok.kind != IDENT and not (
            name_tok.kind == PUNCT and group_at >= 2
            and toks[head[group_at - 2]].text == "operator"):
        return "block", None
    if name_tok.kind == IDENT and name_tok.text in CONTROL_KEYWORDS:
        return "block", None
    name = name_tok.text
    qual = []
    q = group_at - 2
    while q >= 1 and toks[head[q]].kind == PUNCT and toks[head[q]].text == "::" \
            and toks[head[q - 1]].kind == IDENT:
        qual.insert(0, toks[head[q - 1]].text)
        q -= 2
    if q >= 0 and toks[head[q]].kind == PUNCT and toks[head[q]].text == "~":
        name = "~" + name
    # Parameter tokens: between the group markers.
    gopen = head[group_at]
    gclose = pairs[gopen]
    return "function", (name, qual, gopen, gclose)


def _params_take_htmops(toks, lo, hi) -> bool:
    for i in range(lo, hi):
        if toks[i].kind == IDENT and toks[i].text == "HtmOps" \
                and i + 1 <= hi and toks[i + 1].text == "&":
            return True
    return False


def _order_params(toks, pairs, lo, hi) -> dict:
    """memory_order-typed parameters with default values: name -> order."""
    out = {}
    for alo, ahi in _split_args(toks, pairs, lo, hi):
        text = _tok_text(toks, alo, ahi)
        if "memory_order" not in text:
            continue
        name, default = "", None
        for i in range(alo, ahi):
            if toks[i].text == "=":
                if i > alo and toks[i - 1].kind == IDENT:
                    name = toks[i - 1].text
                for j in range(i + 1, ahi):
                    if toks[j].text in _ORDER_LITERALS:
                        default = _ORDER_LITERALS[toks[j].text]
                    elif toks[j].kind == IDENT and toks[j].text in ORDERS \
                            and toks[j - 1].text == "::":
                        default = toks[j].text
                break
        if name and default:
            out[name] = default
    return out


def _walk_scopes(toks, pairs, fm: FileModel, rel: str):
    """Linear walk building the scope tree; returns all scopes (classes keep
    holds_htmops flags, functions carry FunctionInfo)."""
    scopes: list[_Scope] = []
    stack: list[_Scope] = []
    paren_depth = 0
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT and t.text == "(":
            paren_depth += 1
        elif t.kind == PUNCT and t.text == ")":
            paren_depth = max(0, paren_depth - 1)
        elif t.kind == PUNCT and t.text == "{":
            if i not in pairs:
                i += 1
                continue
            if paren_depth > 0:
                i = pairs[i]  # brace expression inside parens (default args,
                continue      # in-call lambdas — handled per function body)
            kind, info = _classify_head(toks, pairs, i)
            close = pairs[i]
            if kind == "function":
                name, qual, gopen, gclose = info
                outer = [s.name for s in stack
                         if s.kind in ("namespace", "class") and s.name]
                qname = "::".join(outer + qual + [name])
                fn = FunctionInfo(
                    qname=qname, base=name, rel=rel,
                    line=t.line, end_line=toks[close].line,
                    takes_htmops=_params_take_htmops(toks, gopen, gclose),
                    is_htmops_method=("HtmOps" in qual or any(
                        s.kind == "class" and s.name == "HtmOps"
                        for s in stack)),
                    order_params=_order_params(toks, pairs, gopen, gclose))
                fn.body = (i, close)  # token span, open/close braces
                sc = _Scope("function", qname, close, fn)
                # Innermost enclosing class decides HtmOps&-holder status
                # after member scan; remember it.
                sc.owner = next((s for s in reversed(stack)
                                 if s.kind == "class"), None)
                fm.functions.append(fn)
            else:
                sc = _Scope(kind, info if isinstance(info, str) else "", close)
                sc.owner = None
                sc.span = (i, close)
            stack.append(sc)
            scopes.append(sc)
        elif t.kind == PUNCT and t.text == "}":
            if stack and stack[-1].close == i:
                stack.pop()
        i += 1
    return scopes


def _scan_class_members(toks, pairs, scopes, fm: FileModel) -> None:
    """Member-declaration statements at class-body depth (nested scopes are
    skipped via the brace map)."""
    aliases = fm.aliases
    for sc in scopes:
        if sc.kind != "class":
            continue
        lo, hi = sc.span
        i = lo + 1
        stmt: list[int] = []
        while i < hi:
            t = toks[i]
            if t.kind == PUNCT and t.text == "{" and i in pairs:
                # Nested scope (method body, nested class, initializer):
                # its interior is NOT part of this statement — a nested
                # context struct's `HtmOps& ops;` must not leak into the
                # outer class (innermost attribution).
                i = pairs[i] + 1
                continue
            if t.kind == PUNCT and t.text == ";":
                member = _classify_member(toks, pairs, stmt, aliases)
                if member is not None:
                    fm.members.append(member)
                    if member.holds_htmops:
                        sc.holds_htmops = True
                stmt = []
                i += 1
                continue
            stmt.append(i)
            i += 1
    # Propagate holder status to the class's methods.
    for sc in scopes:
        if sc.kind == "function" and getattr(sc, "owner", None) is not None \
                and sc.owner.holds_htmops:
            sc.fn.owner_holds_htmops = True


def _resolve_alias_text(text: str, aliases: dict, depth: int = 0) -> str:
    if depth > 4:
        return text
    first = text.split(" ", 1)[0].split("<", 1)[0]
    if first in aliases:
        return _resolve_alias_text(aliases[first], aliases, depth + 1) + \
            " " + text
    return text


def _classify_member(toks, pairs, stmt, aliases):
    """Classify one class-body statement, given as the list of token
    indices at class depth (nested brace interiors already excluded).
    Returns a MemberDecl or None."""
    if len(stmt) < 2:
        return None
    first = toks[stmt[0]].text
    if first in ("public", "private", "protected", "using", "typedef",
                 "friend", "static_assert", "template", "enum",
                 "class", "struct", "union"):
        return None
    text = " ".join(toks[i].text for i in stmt)
    line = toks[stmt[0]].line
    resolved = _resolve_alias_text(text, aliases)
    proto = _looks_like_prototype(toks, pairs, stmt)
    is_atomic = ("atomic <" in resolved or "atomic<" in resolved) \
        and not proto
    is_blocking = False
    for bt in BLOCKING_TYPES:
        if f"std :: {bt}" in resolved or resolved.startswith(bt + " "):
            is_blocking = not proto
            break
    holds_htmops = False
    for k, i in enumerate(stmt[:-1]):
        if toks[i].kind == IDENT and toks[i].text == "HtmOps" \
                and toks[stmt[k + 1]].text == "&":
            if k + 2 < len(stmt) and toks[stmt[k + 2]].kind == IDENT:
                holds_htmops = not proto
            break
    if not (is_atomic or is_blocking or holds_htmops):
        return None
    return MemberDecl(text=text[:120], line=line, is_atomic=is_atomic,
                      is_blocking=is_blocking, holds_htmops=holds_htmops)


def _looks_like_prototype(toks, pairs, stmt) -> bool:
    """True if the statement is a function declaration: it has a '(…)'
    group whose *preceding* token is an identifier and which is the last
    structural element (modulo trailing qualifiers)."""
    last_group_close = -1
    k = 0
    while k < len(stmt):
        i = stmt[k]
        t = toks[i]
        if t.kind == PUNCT and t.text == "(" and i in pairs:
            if k > 0 and toks[stmt[k - 1]].kind == IDENT:
                last_group_close = pairs[i]
            # Skip to past the group's closer within the statement list.
            while k < len(stmt) and stmt[k] <= pairs[i]:
                k += 1
            continue
        if t.kind == PUNCT and t.text == "[" and i in pairs:
            while k < len(stmt) and stmt[k] <= pairs[i]:
                k += 1
            continue
        k += 1
    if last_group_close < 0:
        return False
    for i in stmt:
        if i <= last_group_close:
            continue
        t = toks[i]
        if t.kind == IDENT and t.text in (
                "const", "noexcept", "override", "final", "volatile"):
            continue
        if t.text in ("=", "0", "->"):
            continue
        return False
    return True


def _scan_blocking_uses(toks, fm: FileModel) -> None:
    """Any appearance of a std:: blocking type outside comments/strings.
    Alias definitions (`using X = std::mutex;`) are skipped — the alias
    surfaces through the member declarations that use it."""
    for i, t in enumerate(toks):
        if t.kind == IDENT and t.text in BLOCKING_TYPES:
            if i >= 2 and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "std":
                j = i - 3
                in_alias = False
                while j >= 0 and i - j < 12:
                    tt = toks[j]
                    if tt.kind == PUNCT and tt.text in (";", "{", "}"):
                        break
                    if tt.kind == IDENT and tt.text in ("using", "typedef"):
                        in_alias = True
                        break
                    j -= 1
                if not in_alias:
                    fm.blocking_uses.append((f"std::{t.text}", t.line))


# --- function-body extraction ---------------------------------------------

def _scan_function_body(toks, pairs, sc, fm: FileModel, aliases) -> None:
    fn: FunctionInfo = sc.fn
    lo, hi = fn.body
    _extract_from_span(toks, pairs, fn, lo + 1, hi, fm, aliases)
    _scan_footprint(toks, pairs, fn, lo + 1, hi)
    _find_attempt_lambdas(toks, pairs, fn, lo + 1, hi, fm, aliases)


def _extract_from_span(toks, pairs, fn: FunctionInfo, lo, hi,
                       fm: FileModel, aliases) -> None:
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == IDENT and t.text == "new":
            fn.impurities.append(Impurity("alloc", "new expression", t.line))
            i += 1
            continue
        if t.kind != IDENT:
            i += 1
            continue
        nxt = toks[i + 1] if i + 1 < hi else None
        prev = toks[i - 1] if i > 0 else None
        is_call = nxt is not None and nxt.kind == PUNCT and nxt.text == "("

        # Atomic member functions: x.load(...), p->store(...)
        if is_call and t.text in ATOMIC_METHODS and prev is not None \
                and prev.kind == PUNCT and prev.text in (".", "->"):
            op = _atomic_method_op(toks, pairs, fn, i, fm, aliases)
            if op is not None:
                fn.atomics.append(op)
            i = pairs.get(i + 1, i + 1) + 1
            continue

        # Raw builtins.
        if is_call and (t.text.startswith("__atomic_")
                        or t.text.startswith("__sync_")):
            fn.raw_atomics.append((t.text, t.line))
            op = _atomic_builtin_op(toks, pairs, fn, i, fm)
            if op is not None:
                fn.atomics.append(op)
            i = pairs.get(i + 1, i + 1) + 1
            continue

        # Trace emission macros.
        if is_call and t.text.startswith("PHTM_TRACE_"):
            if t.text not in TRACE_EXEMPT:
                fn.impurities.append(Impurity("trace", t.text, t.line))
            i = pairs.get(i + 1, i + 1) + 1
            continue

        # Impure library calls.
        if is_call and t.text in ALLOC_CALLS:
            fn.impurities.append(Impurity("alloc", t.text + "()", t.line))
        elif is_call and t.text in IO_CALLS:
            fn.impurities.append(Impurity("io", t.text + "()", t.line))
        elif is_call and t.text in BLOCK_CALLS:
            fn.impurities.append(Impurity("os-block", t.text + "()", t.line))
        elif is_call and t.text == "wait" and prev is not None \
                and prev.text in (".", "->"):
            fn.impurities.append(Impurity("os-block", ".wait()", t.line))
        elif t.text in IO_STREAMS and prev is not None and prev.text == "::":
            fn.impurities.append(Impurity("io", "std::" + t.text, t.line))
        elif t.text in BLOCK_TYPES_USE and prev is not None \
                and prev.text == "::":
            fn.impurities.append(
                Impurity("os-block", "std::" + t.text, t.line))

        # Plain calls -> call-graph edges.
        if is_call and t.text not in CALL_IGNORE \
                and not t.text.startswith("PHTM_") \
                and t.text not in ATOMIC_METHODS:
            receiver, qualifier = "", ""
            skip = False
            if prev is not None:
                if prev.kind == PUNCT and prev.text in (".", "->"):
                    receiver = _receiver_text(toks, pairs, i - 1)
                elif prev.kind == PUNCT and prev.text == "::":
                    quals = []
                    q = i - 1
                    while q >= 1 and toks[q].text == "::" \
                            and toks[q - 1].kind == IDENT:
                        quals.insert(0, toks[q - 1].text)
                        q -= 2
                    qualifier = "::".join(quals)
                    if quals and quals[0] == "std":
                        skip = True
                elif prev.kind == IDENT and prev.text not in KEYWORD_PREV_OK:
                    # `Type name(args)` declaration: the constructor call is
                    # to the *type*.
                    fn.calls.append(CallSite(prev.text, prev.line, "", ""))
                    skip = True
                elif prev.kind == PUNCT and prev.text == ">":
                    skip = True  # template-id or comparison; not resolvable
            if not skip:
                fn.calls.append(CallSite(t.text, t.line, receiver, qualifier))
        i += 1


# Identifiers before a call that still mean "this is a plain call site".
KEYWORD_PREV_OK = frozenset(["return", "co_return", "co_await", "case",
                             "else", "do"])


def _receiver_text(toks, pairs, dot_idx) -> str:
    """Walk a postfix expression backwards from a '.'/'->' connector."""
    j = dot_idx - 1
    parts = []
    hops = 0
    while j >= 0 and hops < 40:
        t = toks[j]
        hops += 1
        if t.kind == PUNCT and t.text in ("]", ")") and j in pairs:
            parts.append("[]" if t.text == "]" else "()")
            j = pairs[j] - 1
            continue
        if t.kind == IDENT or (t.kind == PUNCT and t.text in (".", "->", "::")):
            parts.append(t.text)
            j -= 1
            prev = toks[j] if j >= 0 else None
            if t.kind == IDENT and not (
                    prev is not None and prev.kind == PUNCT
                    and prev.text in (".", "->", "::", "]", ")")):
                break
            continue
        break
    return "".join(reversed(parts)).replace("this->", "")


def _resolve_order_expr(toks, pairs, fn, span, fm: FileModel):
    """Resolve one memory-order argument slice -> (order, source)."""
    lo, hi = span
    for i in range(lo, hi):
        t = toks[i]
        if t.text in _ORDER_LITERALS:
            return _ORDER_LITERALS[t.text], "explicit"
        if t.kind == IDENT and t.text in ORDERS and i > lo \
                and toks[i - 1].text == "::":
            return t.text, "explicit"
    # Single identifier: constant or parameter.
    idents = [toks[i].text for i in range(lo, hi) if toks[i].kind == IDENT]
    if len(idents) == 1:
        name = idents[0]
        if name in fn.order_params:
            return fn.order_params[name], f"param-default:{name}"
        if name in fm.mo_constants:
            return fm.mo_constants[name], f"constant:{name}"
        return f"param:{name}", "unresolved"
    return "unknown", "unresolved"


def _atomic_method_op(toks, pairs, fn, i, fm: FileModel, aliases):
    name = toks[i].text
    kind, order_pos = ATOMIC_METHODS[name]
    gopen = i + 1
    if gopen not in pairs:
        return None
    gclose = pairs[gopen]
    args = _split_args(toks, pairs, gopen, gclose)
    addr = _canonical_addr(toks, pairs, *_receiver_span(toks, pairs, i - 1))
    order, source = "seq_cst", "default"
    fail_order = ""
    if len(args) > order_pos:
        order, source = _resolve_order_expr(toks, pairs, fn, args[order_pos], fm)
    if kind == "cas":
        fail_order = order if order in ORDERS else order
        if len(args) > order_pos + 1:
            fail_order, _ = _resolve_order_expr(toks, pairs, fn,
                                                args[order_pos + 1], fm)
        elif order in ("release", "acq_rel"):
            fail_order = "acquire" if order == "acq_rel" else "relaxed"
    return AtomicOp(kind=kind, op=name, order=order, fail_order=fail_order,
                    order_source=source, addr=addr, tail=_addr_tail(addr),
                    line=toks[i].line)


def _receiver_span(toks, pairs, dot_idx):
    j = dot_idx - 1
    hops = 0
    end = dot_idx
    while j >= 0 and hops < 40:
        t = toks[j]
        hops += 1
        if t.kind == PUNCT and t.text in ("]", ")") and j in pairs:
            j = pairs[j] - 1
            continue
        if t.kind == IDENT or (t.kind == PUNCT and t.text in (".", "->", "::")):
            j -= 1
            if t.kind == IDENT:
                prev = toks[j] if j >= 0 else None
                if not (prev is not None and prev.kind == PUNCT
                        and prev.text in (".", "->", "::", "]", ")")):
                    break
            continue
        break
    return (j + 1, end)


def _atomic_builtin_op(toks, pairs, fn, i, fm: FileModel):
    name = toks[i].text
    if name not in ATOMIC_BUILTINS:
        return None
    kind, order_pos = ATOMIC_BUILTINS[name]
    gopen = i + 1
    if gopen not in pairs:
        return None
    args = _split_args(toks, pairs, gopen, pairs[gopen])
    if not args:
        return None
    addr = _canonical_addr(toks, pairs, *args[0]) if kind != "fence" else ""
    span = args[order_pos] if -len(args) <= order_pos < len(args) else None
    order, source = "seq_cst", "default"
    if span is not None:
        order, source = _resolve_order_expr(toks, pairs, fn, span, fm)
    fail_order = ""
    if kind == "cas" and len(args) > order_pos + 1:
        fail_order, _ = _resolve_order_expr(toks, pairs, fn,
                                            args[order_pos + 1], fm)
    return AtomicOp(kind=kind, op=name, order=order, fail_order=fail_order,
                    order_source=source, addr=addr, tail=_addr_tail(addr),
                    line=toks[i].line)


def _find_attempt_lambdas(toks, pairs, fn: FunctionInfo, lo, hi,
                          fm: FileModel, aliases) -> None:
    """`rt.attempt(th, [&](HtmOps& ops) { ... })`: the lambda body is a
    speculative root."""
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == IDENT and t.text == "attempt" and i + 1 < hi \
                and toks[i + 1].text == "(" and i + 1 in pairs \
                and i > 0 and toks[i - 1].text in (".", "->"):
            gclose = pairs[i + 1]
            j = i + 2
            while j < gclose:
                if toks[j].kind == PUNCT and toks[j].text == "[" \
                        and j in pairs:
                    body_open = _lambda_body_open(toks, pairs, j, gclose)
                    if body_open is not None:
                        body_close = pairs[body_open]
                        lam = FunctionInfo(
                            qname=f"{fn.qname}::<attempt-lambda@"
                                  f"{toks[body_open].line}>",
                            base=f"<attempt-lambda@{toks[body_open].line}>",
                            rel=fn.rel, line=toks[body_open].line,
                            end_line=toks[body_close].line,
                            is_attempt_lambda=True)
                        lam.body = (body_open, body_close)
                        _extract_from_span(toks, pairs, lam, body_open + 1,
                                           body_close, fm, aliases)
                        _scan_footprint(toks, pairs, lam, body_open + 1,
                                        body_close)
                        fm.functions.append(lam)
                        j = body_close
                    break
                j += 1
            i = gclose
        i += 1


def _lambda_body_open(toks, pairs, bracket_idx, limit):
    j = pairs.get(bracket_idx)
    if j is None:
        return None
    j += 1
    if j < limit and toks[j].kind == PUNCT and toks[j].text == "(" \
            and j in pairs:
        j = pairs[j] + 1
    while j < limit and toks[j].kind == IDENT and toks[j].text in (
            "mutable", "noexcept", "constexpr"):
        j += 1
        if j < limit and toks[j].kind == PUNCT and toks[j].text == "(" \
                and j in pairs:
            j = pairs[j] + 1
    if j < limit and toks[j].kind == PUNCT and toks[j].text == "->":
        while j < limit and toks[j].text != "{":
            j += 1
    if j < limit and toks[j].kind == PUNCT and toks[j].text == "{":
        return j
    return None


# --- footprint extraction (tmfoot) ----------------------------------------

_INT_OPS = {"+": "+", "-": "-", "*": "*", "/": "//", "%": "%",
            "<<": "<<", ">>": ">>", "(": "(", ")": ")"}


def _int_literal(text: str):
    t = text.replace("'", "")
    while t and t[-1] in "uUlLzZ":
        t = t[:-1]
    try:
        return int(t, 0)
    except ValueError:
        return None


def resolve_int_expr(tokens, table, _busy=None):
    """Resolve a token-text list to an integer through named constants.

    `table` maps constant name -> initializer token list (merged program
    wide). Qualified names try the full `A::B` spelling first, then the
    last component. Anything unresolvable makes the whole expression
    unresolvable (None) — the dataflow must stay conservative."""
    if not tokens:
        return None
    busy = _busy if _busy is not None else set()
    expr, i, n = [], 0, len(tokens)
    while i < n:
        t = tokens[i]
        if t in _INT_OPS:
            expr.append(_INT_OPS[t])
            i += 1
            continue
        lit = _int_literal(t)
        if lit is not None:
            expr.append(str(lit))
            i += 1
            continue
        if t and (t[0].isalpha() or t[0] == "_"):
            # Collapse a qualified-id chain A :: B :: C.
            parts = [t]
            while i + 2 < n and tokens[i + 1] == "::":
                parts.append(tokens[i + 2])
                i += 2
            i += 1
            for name in ("::".join(parts), parts[-1]):
                if name in table and name not in busy:
                    busy.add(name)
                    val = resolve_int_expr(table[name], table, busy)
                    busy.discard(name)
                    break
            else:
                return None
            if val is None:
                return None
            expr.append(f"({val})")
            continue
        return None
    try:
        val = eval("".join(expr), {"__builtins__": {}})  # arithmetic only
    except Exception:
        return None
    return val if isinstance(val, int) else None


def _loop_trips(loop: LoopInfo, table) -> int | None:
    """Trip count of a recognized counted `for` loop, or None."""
    if loop.kind != "for" or not loop.cmp:
        return None
    lo = resolve_int_expr(loop.init_toks, table)
    hi = resolve_int_expr(loop.limit_toks, table)
    step = resolve_int_expr(loop.step_toks, table) if loop.step_toks else 1
    if lo is None or hi is None or step is None or step == 0:
        return None
    if loop.cmp in (">", ">="):      # down-counting: mirror into up-counting
        lo, hi = hi, lo
        step = abs(step)
    elif loop.step_sign < 0:
        return None                  # `i < B; --i` — not a counted loop
    span = hi - lo
    if loop.cmp in ("<=", ">="):
        span += 1
    elif loop.cmp == "!=" and step != 1:
        return None
    if span <= 0:
        return 0
    return (span + step - 1) // step


def _top_level_positions(toks, pairs, lo, hi, texts):
    """Positions of top-level occurrences of the given punctuator texts
    inside (lo, hi) exclusive, skipping nested groups."""
    out, i = [], lo + 1
    while i < hi:
        t = toks[i]
        if t.kind == PUNCT and t.text in ("(", "[", "{") and i in pairs:
            i = pairs[i] + 1
            continue
        if t.kind == PUNCT and t.text in texts:
            out.append(i)
        i += 1
    return out


def _parse_for_header(toks, pairs, gopen, gclose, line) -> LoopInfo:
    if _top_level_positions(toks, pairs, gopen, gclose, (":",)) \
            and not _top_level_positions(toks, pairs, gopen, gclose, (";",)):
        return LoopInfo("range-for", line, "", "", [], [], [], 1)
    semis = _top_level_positions(toks, pairs, gopen, gclose, (";",))
    if len(semis) != 2:
        return LoopInfo("for", line, "", "", [], [], [], 1)
    init_lo, init_hi = gopen + 1, semis[0]
    cond_lo, cond_hi = semis[0] + 1, semis[1]
    incr_lo, incr_hi = semis[1] + 1, gclose

    var, init_toks = "", []
    eqs = [i for i in range(init_lo, init_hi)
           if toks[i].kind == PUNCT and toks[i].text == "="]
    if eqs and toks[eqs[0] - 1].kind == IDENT:
        var = toks[eqs[0] - 1].text
        init_toks = [toks[i].text for i in range(eqs[0] + 1, init_hi)]

    cmp_op, limit_toks = "", []
    for i in range(cond_lo, cond_hi):
        if toks[i].kind == PUNCT and toks[i].text in ("<", "<=", ">", ">=",
                                                      "!="):
            left = [toks[x].text for x in range(cond_lo, i)]
            if left == [var] or (not var and len(left) == 1):
                var = var or left[0]
                cmp_op = toks[i].text
                limit_toks = [toks[x].text for x in range(i + 1, cond_hi)]
            break

    step_toks, step_sign = [], 1
    incr = [toks[i].text for i in range(incr_lo, incr_hi)]
    if incr in (["++", var], [var, "++"]):
        step_toks, step_sign = [], 1
    elif incr in (["--", var], [var, "--"]):
        step_toks, step_sign = [], -1
    elif len(incr) >= 3 and incr[0] == var and incr[1] in ("+=", "-="):
        step_toks = incr[2:]
        step_sign = 1 if incr[1] == "+=" else -1
    else:
        cmp_op = ""  # unrecognized step: treat as uncounted
    return LoopInfo("for", line, var, cmp_op, init_toks, limit_toks,
                    step_toks, step_sign)


def _stmt_end(toks, pairs, i, hi):
    """End (exclusive) of the unbraced statement starting at token i."""
    while i < hi:
        t = toks[i]
        if t.kind == PUNCT and t.text in ("(", "[", "{") and i in pairs:
            i = pairs[i] + 1
            continue
        if t.kind == PUNCT and t.text == ";":
            return i + 1
        i += 1
    return hi


def _scan_footprint(toks, pairs, fn: FunctionInfo, lo, hi) -> None:
    """Populate fn.loops / fn.foot_accesses / fn.foot_calls over (lo, hi)."""
    _foot_walk(toks, pairs, fn, lo, hi, (), False)


def _foot_walk(toks, pairs, fn, lo, hi, loop_stack, conditional) -> None:
    i = lo
    while i < hi:
        t = toks[i]
        nxt = toks[i + 1] if i + 1 < hi else None
        has_group = nxt is not None and nxt.kind == PUNCT \
            and nxt.text == "(" and (i + 1) in pairs

        if t.kind == IDENT and t.text in ("for", "while") and has_group:
            gopen, gclose = i + 1, pairs[i + 1]
            if t.text == "for":
                loop = _parse_for_header(toks, pairs, gopen, gclose, t.line)
            else:
                loop = LoopInfo("while", t.line, "", "", [], [], [], 1)
            fn.loops.append(loop)
            inner = loop_stack + (len(fn.loops) - 1,)
            # The header itself executes per trip (a `while (t.step(...))`
            # driver loop is exactly this shape) — walk it in loop context.
            _foot_walk(toks, pairs, fn, gopen + 1, gclose, inner, conditional)
            body_lo = gclose + 1
            if body_lo < hi and toks[body_lo].text == "{" \
                    and body_lo in pairs:
                body_hi = pairs[body_lo]
                _foot_walk(toks, pairs, fn, body_lo + 1, body_hi, inner,
                           conditional)
                i = body_hi + 1
            elif body_lo < hi and toks[body_lo].text == ";":
                i = body_lo + 1  # do-while tail: `while (cond);`
            else:
                body_hi = _stmt_end(toks, pairs, body_lo, hi)
                _foot_walk(toks, pairs, fn, body_lo, body_hi, inner,
                           conditional)
                i = body_hi
            continue

        if t.kind == IDENT and t.text == "do" and nxt is not None \
                and nxt.text == "{" and (i + 1) in pairs:
            loop = LoopInfo("do", t.line, "", "", [], [], [], 1)
            fn.loops.append(loop)
            inner = loop_stack + (len(fn.loops) - 1,)
            body_hi = pairs[i + 1]
            _foot_walk(toks, pairs, fn, i + 2, body_hi, inner, conditional)
            i = body_hi + 1
            continue

        if t.kind == IDENT and t.text in ("if", "switch") and has_group:
            gopen, gclose = i + 1, pairs[i + 1]
            # The condition executes unconditionally (in this branch's
            # context); the controlled statement is conditional.
            _foot_walk(toks, pairs, fn, gopen + 1, gclose, loop_stack,
                       conditional)
            body_lo = gclose + 1
            if body_lo < hi and toks[body_lo].text == "{" \
                    and body_lo in pairs:
                body_hi = pairs[body_lo]
                _foot_walk(toks, pairs, fn, body_lo + 1, body_hi, loop_stack,
                           True)
                i = body_hi + 1
            else:
                body_hi = _stmt_end(toks, pairs, body_lo, hi)
                _foot_walk(toks, pairs, fn, body_lo, body_hi, loop_stack,
                           True)
                i = body_hi
            continue

        if t.kind == IDENT and t.text == "else":
            body_lo = i + 1
            if body_lo < hi and toks[body_lo].text == "{" \
                    and body_lo in pairs:
                body_hi = pairs[body_lo]
                _foot_walk(toks, pairs, fn, body_lo + 1, body_hi, loop_stack,
                           True)
                i = body_hi + 1
            else:
                i = body_lo  # `else if` re-enters the if-handler above
            continue

        if t.kind == IDENT and has_group and t.text not in CONTROL_KEYWORDS:
            prev = toks[i - 1] if i > 0 else None
            # Transactional accesses are always a direct `ops.`/`ops_.`
            # method call — match that exact shape rather than walking a
            # general postfix expression backwards.
            on_ops = prev is not None and prev.kind == PUNCT \
                and prev.text in (".", "->") and i >= 2 \
                and toks[i - 2].kind == IDENT \
                and toks[i - 2].text in FOOT_OPS_RECEIVERS
            if on_ops and t.text in FOOT_ACCESS_METHODS:
                gclose = pairs[i + 1]
                args = _split_args(toks, pairs, i + 1, gclose)
                addr = _canonical_addr(toks, pairs, *args[0]) if args else ""
                fn.foot_accesses.append(FootAccess(
                    kind=FOOT_ACCESS_METHODS[t.text], op=t.text, addr=addr,
                    line=t.line, loops=loop_stack, conditional=conditional))
            elif on_ops:
                pass  # ops.work()/ops.xabort(): no cache-line footprint
            elif t.text not in CALL_IGNORE \
                    and not t.text.startswith("PHTM_"):
                receiver, skip = "", False
                if prev is not None:
                    if prev.kind == PUNCT and prev.text in (".", "->"):
                        receiver = _receiver_text(toks, pairs, i - 1)
                    elif prev.kind == PUNCT and prev.text == "::":
                        if i >= 2 and toks[i - 2].text == "std":
                            skip = True
                    elif prev.kind == IDENT \
                            and prev.text not in KEYWORD_PREV_OK:
                        skip = True  # `Type name(args)` declaration
                    elif prev.kind == PUNCT and prev.text == ">":
                        skip = True
                if not skip:
                    gclose = pairs[i + 1]
                    arg_idents = [toks[x].text.lower()
                                  for x in range(i + 2, gclose)
                                  if toks[x].kind == IDENT]
                    passes = any("ops" in a or "ctx" in a
                                 for a in arg_idents + [receiver.lower()])
                    fn.foot_calls.append(FootCall(
                        name=t.text, line=t.line, receiver=receiver,
                        passes_ctx=passes, loops=loop_stack,
                        conditional=conditional))
            # Fall through at i+1: arguments may contain nested accesses
            # (`undo.stage(addr, ops_.read(addr))`).
        i += 1


def resolve_loop_trips(prog: "Program") -> None:
    """Program-wide pass: resolve counted-for trip counts through the
    merged named-constant table (run after the constant merge)."""
    table = prog.merged_int_constants()
    for fn in prog.functions():
        for loop in fn.loops:
            loop.trips = _loop_trips(loop, table)


# --- program loading ------------------------------------------------------

SOURCE_SUFFIXES = (".hpp", ".cpp", ".h", ".cc")


def load_program(root: Path, subdir: str = "src") -> Program:
    prog = Program(root=root)
    base = root / subdir
    for path in sorted(base.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        prog.files.append(parse_file(path, rel))
    # Second pass: re-resolve alias-dependent classifications with the
    # program-wide alias map (a typedef in a header must cover uses in
    # every includer).
    merged = prog.merged_aliases()
    for f in prog.files:
        f.aliases = dict(merged)
    merged_mo = prog.merged_mo_constants()
    for f in prog.files:
        f.mo_constants = dict(merged_mo)
    merged_int = prog.merged_int_constants()
    for f in prog.files:
        f.int_constants = dict(merged_int)
    resolve_loop_trips(prog)
    return prog
