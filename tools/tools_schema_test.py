#!/usr/bin/env python3
"""Schema-version strictness tests for the offline tools.

Both consumers of versioned JSON produced by src/obs/trace.cpp must refuse
shapes they do not understand, naming the versions they do:

  * tools/trace_view.py      — the `phtm_meta` record (schema 1) and the
                               tmfoot footprint document (schema 1)
  * tools/bench_report.py    — the telemetry block (schema 1)

A tool that silently misreads a future schema would fold wrong numbers
into CI checks and benchmark reports; rejection with the valid list makes
the failure loud and the fix obvious. Runs as the `tools_schema_test`
CTest target (label `lint`).
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_report  # noqa: E402
import trace_view  # noqa: E402


def meta_event(args: dict) -> dict:
    return {"name": "phtm_meta", "ph": "i", "s": "g", "pid": 0, "tid": 0,
            "ts": 0, "args": args}


def valid_meta_args(**overrides) -> dict:
    args = {"schema": 1, "events": 0, "dropped": 0, "threads": 0}
    args.update(overrides)
    return args


class TraceViewSchema(unittest.TestCase):
    def test_current_schema_accepted(self):
        meta = trace_view.validate_schema([meta_event(valid_meta_args())])
        self.assertEqual(meta["schema"], 1)

    def test_unknown_schema_rejected_with_valid_list(self):
        with self.assertRaises(trace_view.CheckFailure) as ctx:
            trace_view.validate_schema(
                [meta_event(valid_meta_args(schema=99))])
        msg = str(ctx.exception)
        self.assertIn("99", msg)
        self.assertIn(str(list(trace_view.VALID_SCHEMAS)), msg)

    def test_missing_schema_rejected(self):
        args = valid_meta_args()
        del args["schema"]
        with self.assertRaises(trace_view.CheckFailure):
            trace_view.validate_schema([meta_event(args)])

    def test_end_to_end_check_rejects_unknown_schema(self):
        doc = {"traceEvents": [meta_event(valid_meta_args(schema=2))]}
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as tmp:
            json.dump(doc, tmp)
            path = Path(tmp.name)
        try:
            events = trace_view.load(path)
            with self.assertRaises(trace_view.CheckFailure):
                trace_view.validate_schema(events)
        finally:
            path.unlink()


def instant(name: str, tid: int = 1) -> dict:
    return {"name": name, "ph": "i", "s": "t", "pid": 0, "tid": tid, "ts": 0}


class TraceViewShardCounters(unittest.TestCase):
    """Per-shard ring reconciliation (sharded commit pipeline)."""

    def test_shard_suffixed_vocabulary_accepted(self):
        events = [meta_event(valid_meta_args(events=4, threads=1)),
                  instant("ring/publish/s0"),
                  instant("ring/validate/ok/s3"),
                  instant("ring/validate/conflict/s1"),
                  instant("ring/validate/rollover/s2")]
        trace_view.validate_schema(events)

    def test_unsuffixed_ring_names_rejected(self):
        # src/obs/trace.cpp always stamps the shard; a bare name means the
        # trace came from a build this tool does not understand.
        for name in ("ring/publish", "ring/validate/ok"):
            with self.assertRaises(trace_view.CheckFailure):
                trace_view.validate_schema(
                    [meta_event(valid_meta_args(events=1, threads=1)),
                     instant(name)])

    def check(self, meta_extra: dict, names: list[str]) -> list[str]:
        meta = valid_meta_args(events=len(names), threads=1)
        meta.update(meta_extra)
        events = [meta_event(meta)] + [instant(n) for n in names]
        trace_view.validate_schema(events)
        return trace_view.check_counters(
            meta, trace_view.count_names(events))

    def test_per_shard_counters_reconcile(self):
        lines = self.check(
            {"stats_ring_publishes_s0": 2, "stats_ring_publishes_s1": 0,
             "stats_ring_validates_s0": 3},
            ["ring/publish/s0", "ring/publish/s0",
             "ring/validate/ok/s0", "ring/validate/conflict/s0",
             "ring/validate/rollover/s0"])
        self.assertTrue(any("ring/validate/*/s0: 3" in l for l in lines))

    def test_publish_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure) as ctx:
            self.check({"stats_ring_publishes_s2": 5}, ["ring/publish/s2"])
        self.assertIn("ring/publish/s2", str(ctx.exception))

    def test_validate_sums_across_results_and_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"stats_ring_validates_s1": 1},
                       ["ring/validate/ok/s1", "ring/validate/conflict/s1"])

    def test_drops_relax_to_upper_bound(self):
        # dropped > 0: counted <= recorded passes, counted > recorded fails.
        self.check({"dropped": 1, "stats_ring_publishes_s0": 4},
                   ["ring/publish/s0"])
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"dropped": 1, "stats_ring_publishes_s0": 0},
                       ["ring/publish/s0"])


class TraceViewServerCounters(unittest.TestCase):
    """Serving-layer vocabulary + shed/degrade reconciliation."""

    def test_server_vocabulary_accepted(self):
        events = [meta_event(valid_meta_args(events=4, threads=1)),
                  instant("server/shed"),
                  instant("server/degrade/normal"),
                  instant("server/degrade/degraded"),
                  instant("server/degrade/shedding")]
        trace_view.validate_schema(events)

    def test_unknown_server_state_rejected(self):
        # src/obs/trace.cpp stamps only the three OverloadState names; an
        # unknown state means the vocabulary drifted.
        for name in ("server/degrade/panic", "server/degrade", "server/"):
            with self.assertRaises(trace_view.CheckFailure):
                trace_view.validate_schema(
                    [meta_event(valid_meta_args(events=1, threads=1)),
                     instant(name)])

    def check(self, meta_extra: dict, names: list[str]) -> list[str]:
        meta = valid_meta_args(events=len(names), threads=1)
        meta.update(meta_extra)
        events = [meta_event(meta)] + [instant(n) for n in names]
        trace_view.validate_schema(events)
        return trace_view.check_counters(
            meta, trace_view.count_names(events))

    def test_shed_and_degrade_counters_reconcile(self):
        lines = self.check(
            {"stats_server_sheds": 2, "stats_server_degrades_normal": 1,
             "stats_server_degrades_degraded": 1,
             "stats_server_degrades_shedding": 1},
            ["server/shed", "server/shed", "server/degrade/degraded",
             "server/degrade/shedding", "server/degrade/normal"])
        self.assertTrue(any("server/shed: 2" in l for l in lines))

    def test_shed_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure) as ctx:
            self.check({"stats_server_sheds": 3}, ["server/shed"])
        self.assertIn("server/shed", str(ctx.exception))

    def test_degrade_state_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"stats_server_degrades_shedding": 0},
                       ["server/degrade/shedding"])

    def test_drops_relax_to_upper_bound(self):
        self.check({"dropped": 1, "stats_server_sheds": 5}, ["server/shed"])
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"dropped": 1, "stats_server_sheds": 0},
                       ["server/shed"])


class TraceViewPersistCounters(unittest.TestCase):
    """Durable-mode vocabulary + persist/crash/recovery reconciliation."""

    def test_persist_vocabulary_accepted(self):
        events = [meta_event(valid_meta_args(events=5, threads=1)),
                  instant("persist/pwb"),
                  instant("persist/pfence"),
                  instant("persist/psync"),
                  instant("crash"),
                  instant("recovery")]
        trace_view.validate_schema(events)

    def test_unknown_persist_op_rejected(self):
        # src/obs/trace.cpp stamps only the three PersistOp names; an
        # unknown op means the vocabulary drifted.
        for name in ("persist/clflush", "persist", "recovery/partial"):
            with self.assertRaises(trace_view.CheckFailure):
                trace_view.validate_schema(
                    [meta_event(valid_meta_args(events=1, threads=1)),
                     instant(name)])

    def check(self, meta_extra: dict, names: list[str]) -> list[str]:
        meta = valid_meta_args(events=len(names), threads=1)
        meta.update(meta_extra)
        events = [meta_event(meta)] + [instant(n) for n in names]
        trace_view.validate_schema(events)
        return trace_view.check_counters(
            meta, trace_view.count_names(events))

    def test_persist_counters_reconcile(self):
        lines = self.check(
            {"stats_persists_pwb": 2, "stats_persists_pfence": 1,
             "stats_persists_psync": 0, "stats_crashes": 1,
             "stats_recoveries": 1},
            ["persist/pwb", "persist/pwb", "persist/pfence",
             "crash", "recovery"])
        self.assertTrue(any("persist/pwb: 2" in l for l in lines))
        self.assertTrue(any("recovery: 1" in l for l in lines))

    def test_persist_op_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure) as ctx:
            self.check({"stats_persists_pfence": 3}, ["persist/pfence"])
        self.assertIn("persist/pfence", str(ctx.exception))

    def test_crash_and_recovery_mismatch_rejected(self):
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"stats_crashes": 0}, ["crash"])
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"stats_recoveries": 2}, ["recovery"])

    def test_drops_relax_to_upper_bound(self):
        self.check({"dropped": 1, "stats_persists_pwb": 5}, ["persist/pwb"])
        with self.assertRaises(trace_view.CheckFailure):
            self.check({"dropped": 1, "stats_persists_pwb": 0},
                       ["persist/pwb"])


def footprint_doc(**overrides) -> dict:
    span = {"qname": "f", "file": "src/core/a.cpp", "line": 1,
            "kind": "fast", "reads": {"lo": 0, "hi": 0},
            "writes": {"lo": 0, "hi": 0}, "unresolved_calls": [],
            "fits": {"testing": {"writes": True, "reads": True}}}
    doc = {"schema": 1, "profiles": {"testing": {}}, "spans": [span]}
    doc.update(overrides)
    return doc


class TraceViewFootprintSchema(unittest.TestCase):
    def load(self, doc: dict) -> dict:
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as tmp:
            json.dump(doc, tmp)
            path = Path(tmp.name)
        try:
            return trace_view.load_footprint(path)
        finally:
            path.unlink()

    def test_current_schema_accepted(self):
        doc = self.load(footprint_doc())
        self.assertEqual(doc["schema"], 1)

    def test_unknown_schema_rejected_with_valid_list(self):
        with self.assertRaises(trace_view.CheckFailure) as ctx:
            self.load(footprint_doc(schema=99))
        msg = str(ctx.exception)
        self.assertIn("99", msg)
        self.assertIn(str(list(trace_view.FOOTPRINT_SCHEMAS)), msg)

    def test_missing_schema_rejected(self):
        doc = footprint_doc()
        del doc["schema"]
        with self.assertRaises(trace_view.CheckFailure):
            self.load(doc)

    def test_missing_profiles_rejected(self):
        doc = footprint_doc()
        del doc["profiles"]
        with self.assertRaises(trace_view.CheckFailure):
            self.load(doc)

    def test_malformed_span_rejected(self):
        doc = footprint_doc()
        del doc["spans"][0]["fits"]
        with self.assertRaises(trace_view.CheckFailure):
            self.load(doc)


class BenchReportTelemetrySchema(unittest.TestCase):
    def fold(self, block: dict) -> dict:
        """Drive the real ingestion path: a 'bench binary' that writes
        `block` to PHTM_TRACE_TELEMETRY, folded by run_with_telemetry."""
        telemetry: dict = {}
        writer = ("import os, json, sys; "
                  "open(os.environ['PHTM_TRACE_TELEMETRY'], 'w')"
                  f".write({json.dumps(json.dumps(block))})")
        bench_report.run_with_telemetry(
            [sys.executable, "-c", writer], dict(), "fake_bench", telemetry)
        return telemetry

    def test_current_schema_accepted(self):
        telemetry = self.fold({"schema": 1, "events": 0})
        self.assertEqual(telemetry["fake_bench"]["schema"], 1)

    def test_unknown_schema_rejected_with_valid_list(self):
        with self.assertRaises(SystemExit) as ctx:
            self.fold({"schema": 99, "events": 0})
        msg = str(ctx.exception)
        self.assertIn("99", msg)
        self.assertIn(str(list(bench_report.VALID_TELEMETRY_SCHEMAS)), msg)

    def test_missing_schema_rejected(self):
        with self.assertRaises(SystemExit):
            self.fold({"events": 0})


def server_block(**overrides) -> dict:
    phase = {"name": "sustained", "rate_tps": 1000.0, "duration_s": 1.0,
             "offered": 10, "accepted": 9, "committed": 8, "shed": 1,
             "rejected": 1, "throughput": 8.0, "p50_us": 100.0,
             "p99_us": 900.0, "p999_us": 1500.0, "slo_ok": True}
    block = {"schema": 1, "workers": 2, "slo_p99_ms": 5.0,
             "phases": [phase],
             "totals": {"submitted": 10, "accepted": 9, "rejected": 1,
                        "committed": 8, "shed": 1,
                        "degrades": {"normal": 0, "degraded": 0,
                                     "shedding": 0}},
             "conservation_ok": True}
    block.update(overrides)
    return block


class BenchReportServerSchema(unittest.TestCase):
    """bench_server soak-block validation (bench_report --server)."""

    def test_current_schema_accepted(self):
        bench_report.check_server_block(server_block())

    def test_unknown_schema_rejected_with_valid_list(self):
        with self.assertRaises(SystemExit) as ctx:
            bench_report.check_server_block(server_block(schema=99))
        msg = str(ctx.exception)
        self.assertIn("99", msg)
        self.assertIn(str(list(bench_report.VALID_SERVER_SCHEMAS)), msg)

    def test_missing_phase_field_rejected(self):
        block = server_block()
        del block["phases"][0]["p99_us"]
        with self.assertRaises(SystemExit) as ctx:
            bench_report.check_server_block(block)
        self.assertIn("p99_us", str(ctx.exception))

    def test_empty_phases_rejected(self):
        with self.assertRaises(SystemExit):
            bench_report.check_server_block(server_block(phases=[]))

    def test_missing_totals_field_rejected(self):
        block = server_block()
        del block["totals"]["degrades"]
        with self.assertRaises(SystemExit):
            bench_report.check_server_block(block)

    def test_conservation_violation_rejected(self):
        with self.assertRaises(SystemExit) as ctx:
            bench_report.check_server_block(
                server_block(conservation_ok=False))
        self.assertIn("conservation", str(ctx.exception))


if __name__ == "__main__":
    unittest.main()
