#!/usr/bin/env python3
"""Post-process a PART-HTM Chrome trace (PHTM_TRACE_OUT).

Default mode prints a run summary: per-thread event totals, the event
vocabulary histogram, the abort mix by cause, and commits by execution
path — the same shape as the EXPERIMENTS.md abort-breakdown rows, derived
from raw events instead of aggregate counters.

`--check` validates the file for CI: the JSON must parse, carry exactly one
`phtm_meta` record (the tracer's exact loss accounting plus any aggregate
counters the run registered via PHTM_TRACE_META), use only the known event
vocabulary, and — the acceptance invariant — the per-cause abort totals,
per-path commit totals, and per-shard ring publish/validate totals counted
from raw events must agree with the run's own `stats_*` counters: exact
equality when `dropped == 0`, `<=` otherwise (a dropped event can only
lose a count, never invent one).

`--footprint FOOT.json [--profile NAME]` reconciles the trace against
tools/tmfoot's static capacity analysis (`tmfoot.py --footprint-out`): if
the run recorded capacity aborts while the static pass proved every
speculative span fits the chosen machine profile, the static model and the
telemetry disagree and the check fails. Otherwise it reports which spans
(no finite static bound, or a bound above capacity) account for the
observed capacity aborts.

Exit status: 0 clean, 1 check failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import Counter
from pathlib import Path

CAUSES = ("conflict", "capacity", "explicit", "other")
PATHS = ("HTM", "SW", "GL")
REASONS = ("conflict_exhaustion", "partitioned_exhaustion", "starvation",
           "irrevocable", "quarantine")
RING_RESULTS = ("ok", "conflict", "rollover")
# Serving-layer overload states (src/server/admission.hpp OverloadState —
# keep in sync with server_state_name in src/obs/trace.cpp).
SERVER_STATES = ("normal", "degraded", "shedding")
# Persistence-domain ops (util/stats.hpp PersistOp — keep in sync with
# persist_op_name in src/obs/trace.cpp).
PERSIST_OPS = ("pwb", "pfence", "psync")
# Per-shard keys are stats_ring_publishes_s<k> / stats_ring_validates_s<k>;
# the shard count comes from the keys the run registered, not a constant
# here, so the tool keeps working if core::ShardedRing::kShards changes.
RING_KEY_RE = re.compile(r"^stats_ring_(publishes|validates)_s(\d+)$")

# Event-name vocabulary the C++ writer emits (src/obs/trace.cpp).
NAME_RE = re.compile(
    r"^(process_name|thread_name|phtm_meta"
    r"|tx/(HTM|SW|GL)"
    r"|abort/(conflict|capacity|explicit|other)"
    r"|path/(HTM|SW|GL)"
    r"|sub_begin|sub_commit|sub_abort"
    r"|ring/publish/s\d+|ring/validate/(ok|conflict|rollover)/s\d+"
    r"|doom/(none|conflict|capacity|explicit|other)"
    r"|fallback/(conflict_exhaustion|partitioned_exhaustion|starvation"
    r"|irrevocable|quarantine)"
    r"|server/shed|server/degrade/(normal|degraded|shedding)"
    r"|persist/(pwb|pfence|psync)|crash|recovery"
    r"|global_abort)$")


class CheckFailure(Exception):
    pass


def load(path: Path) -> list[dict]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise CheckFailure(f"cannot load {path}: {e}") from None
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise CheckFailure("no traceEvents array")
    return events


# phtm_meta schema versions this tool understands (src/obs/trace.cpp
# stamps the version it writes). An unknown version means the record's
# shape changed — refuse rather than misread it.
VALID_SCHEMAS = (1,)


def validate_schema(events: list[dict]) -> dict:
    """Structural checks; returns the phtm_meta args."""
    metas = [e for e in events if e.get("name") == "phtm_meta"]
    if len(metas) != 1:
        raise CheckFailure(f"expected exactly one phtm_meta record, "
                           f"found {len(metas)}")
    meta = metas[0].get("args", {})
    schema = meta.get("schema")
    if schema not in VALID_SCHEMAS:
        raise CheckFailure(
            f"unknown phtm_meta schema version {schema!r}; this tool "
            f"understands {list(VALID_SCHEMAS)} — regenerate the trace or "
            "update tools/trace_view.py")
    for key in ("events", "dropped", "threads"):
        if not isinstance(meta.get(key), int):
            raise CheckFailure(f"phtm_meta.args.{key} missing or non-integer")
    for e in events:
        name = e.get("name")
        if not isinstance(name, str) or not NAME_RE.match(name):
            raise CheckFailure(f"unknown event name: {name!r}")
        if e.get("ph") not in ("M", "i", "X"):
            raise CheckFailure(f"unknown phase {e.get('ph')!r} on {name}")
        if e.get("ph") in ("i", "X"):
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise CheckFailure(f"bad ts on {name}: {ts!r}")
        if e.get("ph") == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise CheckFailure(f"bad dur on {name}: {dur!r}")
    return meta


# Footprint-document schema versions (tools/tmfoot/tmfoot.py stamps the
# version it writes). Same refuse-on-unknown discipline as phtm_meta.
FOOTPRINT_SCHEMAS = (1,)


def load_footprint(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise CheckFailure(f"cannot load footprint {path}: {e}") from None
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema not in FOOTPRINT_SCHEMAS:
        raise CheckFailure(
            f"unknown footprint schema version {schema!r}; this tool "
            f"understands {list(FOOTPRINT_SCHEMAS)} — regenerate with "
            "tools/tmfoot/tmfoot.py or update tools/trace_view.py")
    if not isinstance(doc.get("profiles"), dict) \
            or not isinstance(doc.get("spans"), list):
        raise CheckFailure(f"footprint {path} missing profiles/spans")
    for s in doc["spans"]:
        for key in ("qname", "file", "line", "kind", "reads", "writes",
                    "fits"):
            if key not in s:
                raise CheckFailure(
                    f"footprint span missing field {key!r}: {s}")
    return doc


def check_footprint(foot: dict, profile: str, meta: dict,
                    names: Counter) -> list[str]:
    """Reconcile static capacity bounds against observed capacity aborts.

    The static pass and the runtime measure the same quantity (distinct
    cache lines touched through HtmOps), so the two can disagree in only
    one direction without a bug: observed capacity aborts are fine as long
    as at least one span lacks a proved fit. Capacity aborts under a
    proved-everything-fits verdict mean the static model is wrong (or the
    trace is from a different build) — that is the gap this check hunts.
    """
    if profile not in foot["profiles"]:
        raise CheckFailure(
            f"profile {profile!r} not in footprint document "
            f"(has {sorted(foot['profiles'])})")
    # Prefer the run's own aggregate counter (exact even under event
    # drops); fall back to counting abort/capacity events.
    cap_aborts = meta.get("stats_aborts_capacity",
                          names.get("abort/capacity", 0))
    unfit = [s for s in foot["spans"]
             if not (s["fits"][profile]["writes"]
                     and s["fits"][profile]["reads"])]
    lines = [f"  profile {profile}: {len(foot['spans'])} span(s), "
             f"{len(unfit)} without a proved fit; "
             f"{cap_aborts} capacity abort(s) observed"]
    if cap_aborts > 0 and not unfit:
        raise CheckFailure(
            f"static/telemetry gap: tmfoot proves every span fits profile "
            f"{profile!r}, yet the run recorded {cap_aborts} capacity "
            "abort(s) — the static model and the simulator disagree")
    if cap_aborts > 0:
        lines.append(f"  capacity aborts are explainable: {len(unfit)} "
                     "span(s) have no finite static fit:")
    elif unfit:
        lines.append("  no capacity aborts; conservative (unproved) "
                     "spans:")
    for s in unfit:
        def fmt(iv: dict) -> str:
            hi = "inf" if iv["hi"] is None else iv["hi"]
            return f"[{iv['lo']},{hi}]"
        why = "; ".join(s.get("unresolved_calls", [])[:3])
        lines.append(f"    {s['file']}:{s['line']} ({s['kind']}) "
                     f"reads={fmt(s['reads'])} writes={fmt(s['writes'])}"
                     + (f" — {why}" if why else ""))
    if not unfit and cap_aborts == 0:
        lines.append("  consistent: every span statically fits and no "
                     "capacity abort was recorded")
    return lines


def count_names(events: list[dict]) -> Counter:
    return Counter(e["name"] for e in events
                   if e.get("ph") != "M" and e.get("name") != "phtm_meta")


def check_counters(meta: dict, names: Counter) -> list[str]:
    """Cross-check event counts against the run's aggregate counters.

    The instrumentation keeps a 1:1 invariant between emissions and
    StatSheet recordings (every record_abort has an adjacent
    PHTM_TRACE_TX_ABORT, ditto commits), so with no drops the trace is a
    complete replica of the statistics.
    """
    lines = []
    exact = meta.get("dropped", 0) == 0

    def compare(label: str, counted: int, recorded: int) -> None:
        if exact and counted != recorded:
            raise CheckFailure(
                f"{label}: trace counts {counted} but the run recorded "
                f"{recorded} (dropped == 0, so these must be equal)")
        if not exact and counted > recorded:
            raise CheckFailure(
                f"{label}: trace counts {counted} > recorded {recorded} "
                "(drops can lose events, never invent them)")
        lines.append(f"  {label}: {counted} vs recorded {recorded} "
                     f"[{'==' if exact else '<='}] ok")

    found_any = False
    for cause in CAUSES:
        key = f"stats_aborts_{cause}"
        if key in meta:
            found_any = True
            compare(f"aborts/{cause}", names.get(f"abort/{cause}", 0),
                    meta[key])
    for p in PATHS:
        key = f"stats_commits_{p}"
        if key in meta:
            found_any = True
            compare(f"commits/{p}", names.get(f"tx/{p}", 0), meta[key])
    for reason in REASONS:
        key = f"stats_fallbacks_{reason}"
        if key in meta:
            found_any = True
            compare(f"fallbacks/{reason}",
                    names.get(f"fallback/{reason}", 0), meta[key])
    # Sharded commit pipeline: each shard's publish counter matches its
    # ring/publish/s<k> instants, and its validate counter matches the sum
    # over that shard's ok/conflict/rollover validation outcomes.
    for key in sorted(meta):
        m = RING_KEY_RE.match(key)
        if not m:
            continue
        found_any = True
        kind, shard = m.group(1), m.group(2)
        if kind == "publishes":
            compare(f"ring/publish/s{shard}",
                    names.get(f"ring/publish/s{shard}", 0), meta[key])
        else:
            counted = sum(names.get(f"ring/validate/{r}/s{shard}", 0)
                          for r in RING_RESULTS)
            compare(f"ring/validate/*/s{shard}", counted, meta[key])
    # Serving layer: every shed and every overload-state transition is
    # traced through the same apply path that bumps the server's counters
    # (src/server/server.cpp apply_state / worker_main), so they reconcile
    # like the TM-level events do.
    if "stats_server_sheds" in meta:
        found_any = True
        compare("server/shed", names.get("server/shed", 0),
                meta["stats_server_sheds"])
    for state in SERVER_STATES:
        key = f"stats_server_degrades_{state}"
        if key in meta:
            found_any = True
            compare(f"server/degrade/{state}",
                    names.get(f"server/degrade/{state}", 0), meta[key])
    # Durable mode: every pwb/pfence/psync, every crash freeze and every
    # recovery pass is traced at the same single point that bumps the
    # StatSheet counter (sim/persist.cpp, core/durable.hpp), so the 1:1
    # invariant holds for the persistence layer too.
    for op in PERSIST_OPS:
        key = f"stats_persists_{op}"
        if key in meta:
            found_any = True
            compare(f"persist/{op}", names.get(f"persist/{op}", 0), meta[key])
    if "stats_crashes" in meta:
        found_any = True
        compare("crash", names.get("crash", 0), meta["stats_crashes"])
    if "stats_recoveries" in meta:
        found_any = True
        compare("recovery", names.get("recovery", 0), meta["stats_recoveries"])
    if not found_any:
        lines.append("  (run registered no stats_* counters; "
                     "schema-only check)")
    return lines


def print_summary(events: list[dict], meta: dict, names: Counter) -> None:
    threads = sorted({e.get("tid", 0) for e in events
                      if e.get("ph") != "M" and e.get("name") != "phtm_meta"})
    per_thread = Counter(e.get("tid", 0) for e in events
                         if e.get("ph") != "M" and e.get("name") != "phtm_meta")
    print(f"events: {meta['events']}  dropped: {meta['dropped']}  "
          f"threads: {meta['threads']}")
    print(f"records in file: {sum(names.values())} over "
          f"{len(threads)} emitting thread(s)")
    for t in threads:
        print(f"  tid {t}: {per_thread[t]} records")

    aborts = {c: names.get(f"abort/{c}", 0) for c in CAUSES}
    total_aborts = sum(aborts.values())
    print(f"\nabort mix ({total_aborts} aborts):")
    for c in CAUSES:
        pct = 100.0 * aborts[c] / total_aborts if total_aborts else 0.0
        print(f"  {c:<9} {aborts[c]:>10}  {pct:5.1f}%")

    commits = {p: names.get(f"tx/{p}", 0) for p in PATHS}
    total_commits = sum(commits.values())
    print(f"\ncommits by path ({total_commits} commits):")
    for p in PATHS:
        pct = 100.0 * commits[p] / total_commits if total_commits else 0.0
        print(f"  {p:<9} {commits[p]:>10}  {pct:5.1f}%")

    falls = {r: names.get(f"fallback/{r}", 0) for r in REASONS}
    total_falls = sum(falls.values())
    if total_falls:
        print(f"\nfallback decisions ({total_falls}):")
        for r in REASONS:
            pct = 100.0 * falls[r] / total_falls
            print(f"  {r:<24} {falls[r]:>10}  {pct:5.1f}%")

    print("\nevent vocabulary:")
    for name, n in sorted(names.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<24} {n:>10}")

    extra = {k: v for k, v in meta.items()
             if k not in ("events", "dropped", "threads")}
    if extra:
        print("\nrun counters (PHTM_TRACE_META):")
        for k, v in sorted(extra.items()):
            print(f"  {k:<28} {v}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", type=Path, help="Chrome trace JSON "
                    "(PHTM_TRACE_OUT output)")
    ap.add_argument("--check", action="store_true",
                    help="validate schema and cross-check event counts "
                    "against the run's aggregate counters; nonzero exit on "
                    "any mismatch")
    ap.add_argument("--footprint", type=Path, default=None,
                    help="tmfoot footprint JSON (tmfoot.py --footprint-out) "
                    "to reconcile against observed capacity aborts")
    ap.add_argument("--profile", default="haswell4c8t",
                    help="machine profile for the footprint reconciliation "
                    "(default: haswell4c8t)")
    args = ap.parse_args()

    try:
        events = load(args.trace)
        meta = validate_schema(events)
        names = count_names(events)
        if args.check:
            print(f"{args.trace}: schema ok "
                  f"({meta['events']} events, {meta['dropped']} dropped, "
                  f"{meta['threads']} threads)")
            for line in check_counters(meta, names):
                print(line)
            print("check: ok")
        else:
            print_summary(events, meta, names)
        if args.footprint is not None:
            print(f"\nstatic<->telemetry reconciliation "
                  f"({args.footprint}):")
            foot = load_footprint(args.footprint)
            for line in check_footprint(foot, args.profile, meta, names):
                print(line)
            print("reconcile: ok")
    except CheckFailure as e:
        print(f"check FAILED: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
